package tensor

import "fmt"

// ConvOutSize returns the spatial output size of a convolution or pooling
// window: floor((in + 2*pad - kernel)/stride) + 1. It panics if the
// geometry is degenerate (non-positive output).
func ConvOutSize(in, kernel, stride, pad int) int {
	if stride <= 0 {
		panic(fmt.Sprintf("tensor: non-positive stride %d", stride))
	}
	out := (in+2*pad-kernel)/stride + 1
	if out <= 0 {
		panic(fmt.Sprintf("tensor: convolution output size %d for in=%d kernel=%d stride=%d pad=%d", out, in, kernel, stride, pad))
	}
	return out
}

// Im2Col lowers a batched NCHW image tensor into the column matrix used to
// express convolution as matrix multiplication. For x of shape
// [n, c, h, w] and a kh×kw kernel, the result has shape
// [n*oh*ow, c*kh*kw]: row (n, oy, ox) holds the receptive field of output
// pixel (oy, ox) of sample n, with zero padding outside the image.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	if len(x.shape) != 4 {
		panic(fmt.Sprintf("tensor: Im2Col needs rank-4 NCHW input, got %v", x.shape))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(w, kw, stride, pad)
	cols := New(n*oh*ow, c*kh*kw)
	rowLen := c * kh * kw
	for in := 0; in < n; in++ {
		imgBase := in * c * h * w
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*stride - pad
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*stride - pad
				row := cols.data[((in*oh+oy)*ow+ox)*rowLen:][:rowLen]
				for ch := 0; ch < c; ch++ {
					chBase := imgBase + ch*h*w
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						dst := row[(ch*kh+ky)*kw : (ch*kh+ky)*kw+kw]
						if iy < 0 || iy >= h {
							continue // stays zero (padding)
						}
						srcRow := x.data[chBase+iy*w : chBase+(iy+1)*w]
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix >= 0 && ix < w {
								dst[kx] = srcRow[ix]
							}
						}
					}
				}
			}
		}
	}
	return cols
}

// Col2Im is the adjoint of Im2Col: it scatters column-matrix gradients
// back into an NCHW image tensor of shape [n, c, h, w], accumulating
// where receptive fields overlap. Together with Im2Col it satisfies
// <Im2Col(x), g> == <x, Col2Im(g)> — the property the convolution
// backward pass depends on (verified in tests).
func Col2Im(cols *Tensor, n, c, h, w, kh, kw, stride, pad int) *Tensor {
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(w, kw, stride, pad)
	rowLen := c * kh * kw
	if len(cols.shape) != 2 || cols.shape[0] != n*oh*ow || cols.shape[1] != rowLen {
		panic(fmt.Sprintf("tensor: Col2Im shape %v does not match [%d,%d]", cols.shape, n*oh*ow, rowLen))
	}
	img := New(n, c, h, w)
	for in := 0; in < n; in++ {
		imgBase := in * c * h * w
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*stride - pad
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*stride - pad
				row := cols.data[((in*oh+oy)*ow+ox)*rowLen:][:rowLen]
				for ch := 0; ch < c; ch++ {
					chBase := imgBase + ch*h*w
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						src := row[(ch*kh+ky)*kw : (ch*kh+ky)*kw+kw]
						dstRow := img.data[chBase+iy*w : chBase+(iy+1)*w]
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix >= 0 && ix < w {
								dstRow[ix] += src[kx]
							}
						}
					}
				}
			}
		}
	}
	return img
}

// RowsToNCHW repacks a [n*oh*ow, c] matrix (the output layout of
// Im2Col-based convolution) into an NCHW tensor [n, c, oh, ow].
func RowsToNCHW(rows *Tensor, n, c, oh, ow int) *Tensor {
	if len(rows.shape) != 2 || rows.shape[0] != n*oh*ow || rows.shape[1] != c {
		panic(fmt.Sprintf("tensor: RowsToNCHW shape %v does not match [%d,%d]", rows.shape, n*oh*ow, c))
	}
	out := New(n, c, oh, ow)
	for in := 0; in < n; in++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				src := rows.data[((in*oh+oy)*ow+ox)*c:][:c]
				for ch := 0; ch < c; ch++ {
					out.data[((in*c+ch)*oh+oy)*ow+ox] = src[ch]
				}
			}
		}
	}
	return out
}

// NCHWToRows is the inverse of RowsToNCHW: it flattens an NCHW tensor
// [n, c, oh, ow] into the [n*oh*ow, c] matrix layout.
func NCHWToRows(x *Tensor) *Tensor {
	if len(x.shape) != 4 {
		panic(fmt.Sprintf("tensor: NCHWToRows needs rank-4 input, got %v", x.shape))
	}
	n, c, oh, ow := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	out := New(n*oh*ow, c)
	for in := 0; in < n; in++ {
		for ch := 0; ch < c; ch++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					out.data[((in*oh+oy)*ow+ox)*c+ch] = x.data[((in*c+ch)*oh+oy)*ow+ox]
				}
			}
		}
	}
	return out
}
