package tensor

import (
	"fmt"

	"medsplit/internal/tensor/kernels"
)

// ConvOutSize returns the spatial output size of a convolution or pooling
// window: floor((in + 2*pad - kernel)/stride) + 1. It panics if the
// geometry is degenerate (non-positive output).
func ConvOutSize(in, kernel, stride, pad int) int {
	if stride <= 0 {
		panic(fmt.Sprintf("tensor: non-positive stride %d", stride))
	}
	out := (in+2*pad-kernel)/stride + 1
	if out <= 0 {
		panic(fmt.Sprintf("tensor: convolution output size %d for in=%d kernel=%d stride=%d pad=%d", out, in, kernel, stride, pad))
	}
	return out
}

// convGeom validates a rank-4 NCHW input and returns its dimensions plus
// the output spatial size for the given window.
func convGeom(op string, x *Tensor, kh, kw, stride, pad int) (n, c, h, w, oh, ow int) {
	if len(x.shape) != 4 {
		panic(fmt.Sprintf("tensor: %s needs rank-4 NCHW input, got %v", op, x.shape))
	}
	n, c, h, w = x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh = ConvOutSize(h, kh, stride, pad)
	ow = ConvOutSize(w, kw, stride, pad)
	return
}

// Im2Col lowers a batched NCHW image tensor into the column matrix used to
// express convolution as matrix multiplication. For x of shape
// [n, c, h, w] and a kh×kw kernel, the result has shape
// [n*oh*ow, c*kh*kw]: row (n, oy, ox) holds the receptive field of output
// pixel (oy, ox) of sample n, with zero padding outside the image.
//
// The kernel fans out over batch × output-row strips (each worker owns
// disjoint column-matrix rows), so large lowerings scale with GOMAXPROCS.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	n, c, _, _, oh, ow := convGeom("Im2Col", x, kh, kw, stride, pad)
	cols := New(n*oh*ow, c*kh*kw)
	im2col(cols, x, kh, kw, stride, pad)
	return cols
}

// Im2ColInto is Im2Col writing into dst, which must have shape
// [n*oh*ow, c*kh*kw]. Every element of dst is overwritten (padding
// positions are stored as zeros), so dst may be dirty pooled storage.
func Im2ColInto(dst, x *Tensor, kh, kw, stride, pad int) *Tensor {
	n, c, _, _, oh, ow := convGeom("Im2ColInto", x, kh, kw, stride, pad)
	if len(dst.shape) != 2 || dst.shape[0] != n*oh*ow || dst.shape[1] != c*kh*kw {
		panic(fmt.Sprintf("tensor: Im2ColInto dst shape %v, want [%d,%d]", dst.shape, n*oh*ow, c*kh*kw))
	}
	im2col(dst, x, kh, kw, stride, pad)
	return dst
}

func im2col(dst, x *Tensor, kh, kw, stride, pad int) {
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(w, kw, stride, pad)
	rowLen := c * kh * kw
	xd, dd := x.data, dst.data
	// One unit of work is an (in, oy) strip: ow consecutive rows of the
	// column matrix. Strips touch disjoint output rows, so workers never
	// overlap. The serial guard runs before the closure is built so
	// small shapes pay no per-call allocation (see serialRows).
	work := n * oh * ow * rowLen
	if serialRows(n*oh, work) {
		im2colRange(dd, xd, c, h, w, oh, ow, kh, kw, stride, pad, 0, n*oh)
		return
	}
	parallelRows(n*oh, work, func(u0, u1 int) {
		im2colRange(dd, xd, c, h, w, oh, ow, kh, kw, stride, pad, u0, u1)
	})
}

// im2colRange fills column-matrix strips [u0,u1), one strip per (in, oy)
// pair.
func im2colRange(dd, xd []float32, c, h, w, oh, ow, kh, kw, stride, pad, u0, u1 int) {
	rowLen := c * kh * kw
	for u := u0; u < u1; u++ {
		in, oy := u/oh, u%oh
		imgBase := in * c * h * w
		iy0 := oy*stride - pad
		for ox := 0; ox < ow; ox++ {
			ix0 := ox*stride - pad
			row := dd[(u*ow+ox)*rowLen:][:rowLen]
			for ch := 0; ch < c; ch++ {
				chBase := imgBase + ch*h*w
				for ky := 0; ky < kh; ky++ {
					iy := iy0 + ky
					seg := row[(ch*kh+ky)*kw : (ch*kh+ky)*kw+kw]
					if iy < 0 || iy >= h {
						zeroFloats(seg) // padding
						continue
					}
					srcRow := xd[chBase+iy*w : chBase+(iy+1)*w]
					for kx := 0; kx < kw; kx++ {
						ix := ix0 + kx
						if ix >= 0 && ix < w {
							seg[kx] = srcRow[ix]
						} else {
							seg[kx] = 0
						}
					}
				}
			}
		}
	}
}

// Im2ColNaive is the retained single-threaded reference implementation;
// the differential tests verify the parallel kernel against it.
func Im2ColNaive(x *Tensor, kh, kw, stride, pad int) *Tensor {
	n, c, h, w, oh, ow := convGeom("Im2ColNaive", x, kh, kw, stride, pad)
	cols := New(n*oh*ow, c*kh*kw)
	rowLen := c * kh * kw
	for in := 0; in < n; in++ {
		imgBase := in * c * h * w
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*stride - pad
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*stride - pad
				row := cols.data[((in*oh+oy)*ow+ox)*rowLen:][:rowLen]
				for ch := 0; ch < c; ch++ {
					chBase := imgBase + ch*h*w
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						dst := row[(ch*kh+ky)*kw : (ch*kh+ky)*kw+kw]
						if iy < 0 || iy >= h {
							continue // stays zero (padding)
						}
						srcRow := x.data[chBase+iy*w : chBase+(iy+1)*w]
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix >= 0 && ix < w {
								dst[kx] = srcRow[ix]
							}
						}
					}
				}
			}
		}
	}
	return cols
}

// Col2Im is the adjoint of Im2Col: it scatters column-matrix gradients
// back into an NCHW image tensor of shape [n, c, h, w], accumulating
// where receptive fields overlap. Together with Im2Col it satisfies
// <Im2Col(x), g> == <x, Col2Im(g)> — the property the convolution
// backward pass depends on (verified in tests).
//
// Receptive fields overlap within a sample but never across samples, so
// the kernel fans out over the batch dimension.
func Col2Im(cols *Tensor, n, c, h, w, kh, kw, stride, pad int) *Tensor {
	img := New(n, c, h, w)
	col2imInto(img, cols, kh, kw, stride, pad, false)
	return img
}

// Col2ImInto is Col2Im writing into dst, which must have shape
// [n, c, h, w]. dst is zeroed before accumulation, so it may be dirty
// pooled storage.
func Col2ImInto(dst, cols *Tensor, kh, kw, stride, pad int) *Tensor {
	if len(dst.shape) != 4 {
		panic(fmt.Sprintf("tensor: Col2ImInto dst must be rank-4 NCHW, got %v", dst.shape))
	}
	col2imInto(dst, cols, kh, kw, stride, pad, true)
	return dst
}

func col2imInto(img, cols *Tensor, kh, kw, stride, pad int, zeroFirst bool) {
	n, c, h, w := img.shape[0], img.shape[1], img.shape[2], img.shape[3]
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(w, kw, stride, pad)
	rowLen := c * kh * kw
	if len(cols.shape) != 2 || cols.shape[0] != n*oh*ow || cols.shape[1] != rowLen {
		panic(fmt.Sprintf("tensor: Col2Im shape %v does not match [%d,%d]", cols.shape, n*oh*ow, rowLen))
	}
	cd, id := cols.data, img.data
	work := n * oh * ow * rowLen
	if serialRows(n, work) {
		col2imRange(id, cd, c, h, w, oh, ow, kh, kw, stride, pad, zeroFirst, 0, n)
		return
	}
	parallelRows(n, work, func(n0, n1 int) {
		col2imRange(id, cd, c, h, w, oh, ow, kh, kw, stride, pad, zeroFirst, n0, n1)
	})
}

// col2imRange scatters column-matrix gradients back into image samples
// [n0,n1).
func col2imRange(id, cd []float32, c, h, w, oh, ow, kh, kw, stride, pad int, zeroFirst bool, n0, n1 int) {
	rowLen := c * kh * kw
	for in := n0; in < n1; in++ {
		imgBase := in * c * h * w
		if zeroFirst {
			zeroFloats(id[imgBase : imgBase+c*h*w])
		}
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*stride - pad
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*stride - pad
				row := cd[((in*oh+oy)*ow+ox)*rowLen:][:rowLen]
				for ch := 0; ch < c; ch++ {
					chBase := imgBase + ch*h*w
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						src := row[(ch*kh+ky)*kw : (ch*kh+ky)*kw+kw]
						dstRow := id[chBase+iy*w : chBase+(iy+1)*w]
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix >= 0 && ix < w {
								dstRow[ix] += src[kx]
							}
						}
					}
				}
			}
		}
	}
}

// Col2ImNaive is the retained single-threaded reference implementation.
func Col2ImNaive(cols *Tensor, n, c, h, w, kh, kw, stride, pad int) *Tensor {
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(w, kw, stride, pad)
	rowLen := c * kh * kw
	if len(cols.shape) != 2 || cols.shape[0] != n*oh*ow || cols.shape[1] != rowLen {
		panic(fmt.Sprintf("tensor: Col2ImNaive shape %v does not match [%d,%d]", cols.shape, n*oh*ow, rowLen))
	}
	img := New(n, c, h, w)
	for in := 0; in < n; in++ {
		imgBase := in * c * h * w
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*stride - pad
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*stride - pad
				row := cols.data[((in*oh+oy)*ow+ox)*rowLen:][:rowLen]
				for ch := 0; ch < c; ch++ {
					chBase := imgBase + ch*h*w
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						src := row[(ch*kh+ky)*kw : (ch*kh+ky)*kw+kw]
						dstRow := img.data[chBase+iy*w : chBase+(iy+1)*w]
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix >= 0 && ix < w {
								dstRow[ix] += src[kx]
							}
						}
					}
				}
			}
		}
	}
	return img
}

// RowsToNCHW repacks a [n*oh*ow, c] matrix (the output layout of
// Im2Col-based convolution) into an NCHW tensor [n, c, oh, ow].
func RowsToNCHW(rows *Tensor, n, c, oh, ow int) *Tensor {
	out := New(n, c, oh, ow)
	return RowsToNCHWInto(out, rows)
}

// RowsToNCHWInto is RowsToNCHW writing into dst, whose shape
// [n, c, oh, ow] supplies the geometry. Every element is overwritten.
func RowsToNCHWInto(dst, rows *Tensor) *Tensor {
	if len(dst.shape) != 4 {
		panic(fmt.Sprintf("tensor: RowsToNCHWInto dst must be rank-4, got %v", dst.shape))
	}
	n, c, oh, ow := dst.shape[0], dst.shape[1], dst.shape[2], dst.shape[3]
	if len(rows.shape) != 2 || rows.shape[0] != n*oh*ow || rows.shape[1] != c {
		panic(fmt.Sprintf("tensor: RowsToNCHW shape %v does not match [%d,%d]", rows.shape, n*oh*ow, c))
	}
	rd, od := rows.data, dst.data
	if serialRows(n*oh, n*oh*ow*c) {
		rowsToNCHWRange(od, rd, c, oh, ow, 0, n*oh)
		return dst
	}
	parallelRows(n*oh, n*oh*ow*c, func(u0, u1 int) {
		rowsToNCHWRange(od, rd, c, oh, ow, u0, u1)
	})
	return dst
}

func rowsToNCHWRange(od, rd []float32, c, oh, ow, u0, u1 int) {
	for u := u0; u < u1; u++ {
		in, oy := u/oh, u%oh
		for ox := 0; ox < ow; ox++ {
			src := rd[(u*ow+ox)*c:][:c]
			for ch := 0; ch < c; ch++ {
				od[((in*c+ch)*oh+oy)*ow+ox] = src[ch]
			}
		}
	}
}

// NCHWToRows is the inverse of RowsToNCHW: it flattens an NCHW tensor
// [n, c, oh, ow] into the [n*oh*ow, c] matrix layout.
func NCHWToRows(x *Tensor) *Tensor {
	if len(x.shape) != 4 {
		panic(fmt.Sprintf("tensor: NCHWToRows needs rank-4 input, got %v", x.shape))
	}
	n, c, oh, ow := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	out := New(n*oh*ow, c)
	return NCHWToRowsInto(out, x)
}

// NCHWToRowsInto is NCHWToRows writing into dst of shape [n*oh*ow, c].
// Every element is overwritten.
func NCHWToRowsInto(dst, x *Tensor) *Tensor {
	if len(x.shape) != 4 {
		panic(fmt.Sprintf("tensor: NCHWToRowsInto needs rank-4 input, got %v", x.shape))
	}
	n, c, oh, ow := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	if len(dst.shape) != 2 || dst.shape[0] != n*oh*ow || dst.shape[1] != c {
		panic(fmt.Sprintf("tensor: NCHWToRowsInto dst shape %v, want [%d,%d]", dst.shape, n*oh*ow, c))
	}
	xd, od := x.data, dst.data
	if serialRows(n*oh, n*oh*ow*c) {
		nchwToRowsRange(od, xd, c, oh, ow, 0, n*oh)
		return dst
	}
	parallelRows(n*oh, n*oh*ow*c, func(u0, u1 int) {
		nchwToRowsRange(od, xd, c, oh, ow, u0, u1)
	})
	return dst
}

func nchwToRowsRange(od, xd []float32, c, oh, ow, u0, u1 int) {
	for u := u0; u < u1; u++ {
		in, oy := u/oh, u%oh
		for ox := 0; ox < ow; ox++ {
			row := od[(u*ow+ox)*c:][:c]
			for ch := 0; ch < c; ch++ {
				row[ch] = xd[((in*c+ch)*oh+oy)*ow+ox]
			}
		}
	}
}

// ConvGemmInto fuses the three tail stages of an im2col convolution
// forward pass — the cols·wᵀ GEMM, the bias broadcast, and the
// rows→NCHW repack — into one kernel that writes the NCHW output
// directly. cols is the [n*oh*ow, inC*kh*kw] column matrix, w the
// [outC, inC*kh*kw] kernel matrix, bias an optional [outC] vector, and
// dst the [n, outC, oh, ow] output (fully overwritten; dirty pooled
// storage is fine). Skipping the [n*oh*ow, outC] intermediate saves two
// full passes over the activation volume per forward call.
func ConvGemmInto(dst, cols, w, bias *Tensor) *Tensor {
	if len(dst.shape) != 4 {
		panic(fmt.Sprintf("tensor: ConvGemmInto dst must be rank-4, got %v", dst.shape))
	}
	n, outC, oh, ow := dst.shape[0], dst.shape[1], dst.shape[2], dst.shape[3]
	if len(w.shape) != 2 || w.shape[0] != outC {
		panic(fmt.Sprintf("tensor: ConvGemmInto w shape %v, want [%d,k]", w.shape, outC))
	}
	k := w.shape[1]
	if len(cols.shape) != 2 || cols.shape[0] != n*oh*ow || cols.shape[1] != k {
		panic(fmt.Sprintf("tensor: ConvGemmInto cols shape %v, want [%d,%d]", cols.shape, n*oh*ow, k))
	}
	var bd []float32
	if bias != nil {
		if bias.Size() != outC {
			panic(fmt.Sprintf("tensor: ConvGemmInto bias size %d, want %d", bias.Size(), outC))
		}
		bd = bias.data
	}
	cd, wd, od := cols.data, w.data, dst.data
	work := n * oh * ow * outC * k
	// With vector kernels active and enough output channels to fill
	// vector lanes, run the GEMM through the kernel layer: wᵀ is
	// materialized once (O(outC·k)) so the panel kernel can vectorize
	// across output channels, each strip's [ow, outC] product lands in
	// small pooled scratch, and the bias+NCHW repack becomes a cheap
	// tail pass. Per-element accumulation order over k is unchanged, so
	// the result stays bit-identical to the scalar fused kernel.
	if kernels.Active() && outC >= 8 {
		wt := Default.GetBuf(k * outC)
		transposeRange(wt, wd, outC, k, 0, k)
		if serialRows(n*oh, work) {
			convGemmVecRange(od, cd, wt, bd, outC, k, oh, ow, 0, n*oh)
		} else {
			parallelRows(n*oh, work, func(u0, u1 int) {
				convGemmVecRange(od, cd, wt, bd, outC, k, oh, ow, u0, u1)
			})
		}
		Default.PutBuf(wt)
		return dst
	}
	// Scalar path: fan out over (sample, output-row) strips as in
	// im2col. Each strip reads its cols rows once and streams the kernel
	// matrix per pixel with a 4-wide output-channel register tile, so
	// each loaded column value feeds four dot products. (A 2-pixel ×
	// 4-channel tile was measured slower here: its fourteen live values
	// spill registers.)
	if serialRows(n*oh, work) {
		convGemmRange(od, cd, wd, bd, outC, k, oh, ow, 0, n*oh)
		return dst
	}
	parallelRows(n*oh, work, func(u0, u1 int) {
		convGemmRange(od, cd, wd, bd, outC, k, oh, ow, u0, u1)
	})
	return dst
}

// convGemmVecRange computes output strips [u0,u1) through the vector
// kernel layer: per strip, a [ow, outC] GEMM into pooled scratch
// (contraction blocked on gemmKC panels, one sequential chain per
// element), then bias and the rows→NCHW repack. wt is wᵀ, [k, outC].
func convGemmVecRange(od, cd, wt, bd []float32, outC, k, oh, ow, u0, u1 int) {
	plane := oh * ow
	tmp := Default.GetBuf(ow * outC)
	for u := u0; u < u1; u++ {
		in, oy := u/oh, u%oh
		for p0 := 0; p0 < k; p0 += gemmKC {
			kb := min(gemmKC, k-p0)
			kernels.GemmPanelK(tmp, cd, wt[p0*outC:], 0, ow, kb, outC, k, u*ow*k+p0, p0 > 0)
		}
		outBase := in*outC*plane + oy*ow
		for ox := 0; ox < ow; ox++ {
			row := tmp[ox*outC : ox*outC+outC]
			if bd != nil {
				for oc, v := range row {
					od[outBase+oc*plane+ox] = v + bd[oc]
				}
			} else {
				for oc, v := range row {
					od[outBase+oc*plane+ox] = v
				}
			}
		}
	}
	Default.PutBuf(tmp)
}

// convGemmRange computes output strips [u0,u1) of the fused
// GEMM+bias+repack pass, one strip per (in, oy) pair.
func convGemmRange(od, cd, wd, bd []float32, outC, k, oh, ow, u0, u1 int) {
	plane := oh * ow
	for u := u0; u < u1; u++ {
		in, oy := u/oh, u%oh
		outBase := in*outC*plane + oy*ow
		for ox := 0; ox < ow; ox++ {
			crow := cd[(u*ow+ox)*k:][:k]
			oc := 0
			for ; oc+4 <= outC; oc += 4 {
				w0 := wd[(oc+0)*k : (oc+0)*k+k]
				w1 := wd[(oc+1)*k : (oc+1)*k+k]
				w2 := wd[(oc+2)*k : (oc+2)*k+k]
				w3 := wd[(oc+3)*k : (oc+3)*k+k]
				w0 = w0[:len(crow)]
				w1 = w1[:len(crow)]
				w2 = w2[:len(crow)]
				w3 = w3[:len(crow)]
				var s0, s1, s2, s3 float32
				for p, cv := range crow {
					s0 += cv * w0[p]
					s1 += cv * w1[p]
					s2 += cv * w2[p]
					s3 += cv * w3[p]
				}
				if bd != nil {
					s0 += bd[oc]
					s1 += bd[oc+1]
					s2 += bd[oc+2]
					s3 += bd[oc+3]
				}
				od[outBase+(oc+0)*plane+ox] = s0
				od[outBase+(oc+1)*plane+ox] = s1
				od[outBase+(oc+2)*plane+ox] = s2
				od[outBase+(oc+3)*plane+ox] = s3
			}
			for ; oc < outC; oc++ {
				wrow := wd[oc*k : oc*k+k]
				wrow = wrow[:len(crow)]
				var s float32
				for p, cv := range crow {
					s += cv * wrow[p]
				}
				if bd != nil {
					s += bd[oc]
				}
				od[outBase+oc*plane+ox] = s
			}
		}
	}
}
