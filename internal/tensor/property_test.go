package tensor

import (
	"testing"
	"testing/quick"

	"medsplit/internal/rng"
)

// Randomized algebraic properties of the tensor kernels, via
// testing/quick. Each property seeds its own generator from the quick
// inputs so failures are reproducible.

func quickTensor(seed uint64, maxDim int) *Tensor {
	r := rng.New(seed)
	rows, cols := 1+r.Intn(maxDim), 1+r.Intn(maxDim)
	t := New(rows, cols)
	t.FillNormal(r, 0, 1)
	return t
}

func TestPropertyAddCommutes(t *testing.T) {
	f := func(seed uint64) bool {
		a := quickTensor(seed, 8)
		b := New(a.Shape()...)
		b.FillNormal(rng.New(seed^0xbeef), 0, 1)
		return AllClose(Add(a, b), Add(b, a), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAddSubInverse(t *testing.T) {
	f := func(seed uint64) bool {
		a := quickTensor(seed, 8)
		b := New(a.Shape()...)
		b.FillNormal(rng.New(seed^0xcafe), 0, 1)
		return AllClose(Sub(Add(a, b), b), a, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyScaleLinearity(t *testing.T) {
	// s*(a+b) == s*a + s*b
	f := func(seed uint64, sRaw int8) bool {
		s := float32(sRaw) / 16
		a := quickTensor(seed, 8)
		b := New(a.Shape()...)
		b.FillNormal(rng.New(seed^0xf00d), 0, 1)
		lhs := Scaled(Add(a, b), s)
		rhs := Add(Scaled(a, s), Scaled(b, s))
		return AllClose(lhs, rhs, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMatMulDistributes(t *testing.T) {
	// A·(B+C) == A·B + A·C
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a, b, c := New(m, k), New(k, n), New(k, n)
		a.FillNormal(r, 0, 1)
		b.FillNormal(r, 0, 1)
		c.FillNormal(r, 0, 1)
		return AllClose(MatMul(a, Add(b, c)), Add(MatMul(a, b), MatMul(a, c)), 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDotSymmetricAndCauchySchwarz(t *testing.T) {
	f := func(seed uint64) bool {
		a := quickTensor(seed, 10)
		b := New(a.Shape()...)
		b.FillNormal(rng.New(seed^0xd00d), 0, 1)
		dot := Dot(a, b)
		if dot != Dot(b, a) {
			return false
		}
		// |<a,b>| <= |a||b| with float tolerance.
		return absf(dot) <= a.Norm()*b.Norm()*(1+1e-5)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySoftmaxRowsAreDistributions(t *testing.T) {
	f := func(seed uint64) bool {
		x := quickTensor(seed, 12)
		s := SoftmaxRows(x)
		for r := 0; r < s.Dim(0); r++ {
			var sum float64
			for c := 0; c < s.Dim(1); c++ {
				v := s.At(r, c)
				if v < 0 || v > 1 {
					return false
				}
				sum += float64(v)
			}
			if sum < 0.999 || sum > 1.001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyConcatSplitDim0RoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		parts := 1 + r.Intn(4)
		trailing := []int{1 + r.Intn(3), 1 + r.Intn(3)}
		ts := make([]*Tensor, parts)
		sizes := make([]int, parts)
		for i := range ts {
			sizes[i] = 1 + r.Intn(4)
			shape := append([]int{sizes[i]}, trailing...)
			ts[i] = New(shape...)
			ts[i].FillNormal(r, 0, 1)
		}
		cat := ConcatDim0(ts...)
		back := SplitDim0(cat, sizes)
		for i := range ts {
			if !AllClose(ts[i], back[i], 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyIm2ColAdjointRandomGeometry(t *testing.T) {
	// <Im2Col(x), g> == <x, Col2Im(g)> over random conv geometries.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n, c := 1+r.Intn(2), 1+r.Intn(3)
		h, w := 3+r.Intn(5), 3+r.Intn(5)
		kh, kw := 1+r.Intn(3), 1+r.Intn(3)
		stride := 1 + r.Intn(2)
		pad := r.Intn(2)
		if (h+2*pad-kh)/stride+1 <= 0 || (w+2*pad-kw)/stride+1 <= 0 {
			return true // degenerate geometry: skip
		}
		x := New(n, c, h, w)
		x.FillNormal(r, 0, 1)
		cols := Im2Col(x, kh, kw, stride, pad)
		g := New(cols.Shape()...)
		g.FillNormal(r, 0, 1)
		lhs := Dot(cols, g)
		rhs := Dot(x, Col2Im(g, n, c, h, w, kh, kw, stride, pad))
		diff := lhs - rhs
		if diff < 0 {
			diff = -diff
		}
		scale := absf(lhs)
		if scale < 1 {
			scale = 1
		}
		return diff/scale < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTransposeIsIsometry(t *testing.T) {
	f := func(seed uint64) bool {
		x := quickTensor(seed, 10)
		return absf(Transpose(x).Norm()-x.Norm()) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
