package tensor

import (
	"fmt"

	"medsplit/internal/tensor/kernels"
)

// F16Matrix is half-precision storage for a weight-stationary matrix:
// the operand of a GEMM that is written once (at load or checkpoint
// reload) and read every forward pass. Halving the bytes halves the
// memory traffic the serving matmuls are bound by; the arithmetic stays
// f32 — panels are widened through the (hardware-backed) kernel
// converter into pooled scratch and fed to the same vectorized GEMM
// panels, so accumulation precision is unchanged.
type F16Matrix struct {
	rows, cols int
	data       []uint16
}

// PackF16 narrows a rank-2 tensor to half precision (IEEE binary16,
// round-to-nearest-even). Values outside ±65504 saturate to ±Inf and
// magnitudes below 2⁻²⁴ flush to zero — callers own the judgment that
// their weights fit the f16 range (trained weights overwhelmingly do).
func PackF16(t *Tensor) *F16Matrix {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: PackF16 on rank-%d tensor", len(t.shape)))
	}
	m := &F16Matrix{rows: t.shape[0], cols: t.shape[1], data: make([]uint16, t.Size())}
	kernels.F32ToF16(m.data, t.data)
	return m
}

// Rows returns the row count of the packed matrix.
func (m *F16Matrix) Rows() int { return m.rows }

// Cols returns the column count of the packed matrix.
func (m *F16Matrix) Cols() int { return m.cols }

// SizeBytes returns the storage footprint of the packed matrix.
func (m *F16Matrix) SizeBytes() int { return 2 * len(m.data) }

// Unpack widens the matrix back to a float32 tensor (exact — every f16
// value is representable in f32).
func (m *F16Matrix) Unpack() *Tensor {
	t := New(m.rows, m.cols)
	kernels.F16ToF32(t.data, m.data)
	return t
}

// MatMulF16Into computes a·b into dst for a of shape [m,k] and
// f16-stored b of shape [k,n], overwriting dst, and returns dst. The
// product is bit-identical to MatMulInto(dst, a, b.Unpack()): b is
// widened panel-by-panel into pooled scratch (so the f32 image of b
// never materializes in full) and every output element accumulates in
// f32 through the same sequential chain the f32 engine uses.
func MatMulF16Into(dst, a *Tensor, b *F16Matrix) *Tensor {
	if len(a.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMulF16Into a is rank-%d, want 2", len(a.shape)))
	}
	m, k, n := a.shape[0], a.shape[1], b.cols
	if b.rows != k {
		panic(fmt.Sprintf("tensor: MatMulF16Into inner dims %d and %d", k, b.rows))
	}
	checkGemmDst("MatMulF16Into", dst, m, n)
	if m == 0 || n == 0 {
		return dst
	}
	if k == 0 {
		dst.Zero()
		return dst
	}
	ad, od := a.data, dst.data
	wide := Default.GetBuf(min(gemmKC, k) * n)
	for p0 := 0; p0 < k; p0 += gemmKC {
		p1 := min(p0+gemmKC, k)
		kb := p1 - p0
		panel := wide[:kb*n]
		kernels.F16ToF32(panel, b.data[p0*n:p1*n])
		acc := p0 > 0
		if serialRows(m, m*k*n) {
			kernels.GemmPanelK(od, ad, panel, 0, m, kb, n, k, p0, acc)
		} else {
			parallelRows(m, m*k*n, func(r0, r1 int) {
				kernels.GemmPanelK(od, ad, panel, r0, r1, kb, n, k, p0, acc)
			})
		}
	}
	Default.PutBuf(wide)
	return dst
}
