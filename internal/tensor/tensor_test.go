package tensor

import (
	"testing"

	"medsplit/internal/rng"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 {
		t.Fatalf("Size() = %d, want 24", x.Size())
	}
	if x.Rank() != 3 {
		t.Fatalf("Rank() = %d, want 3", x.Rank())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	assertPanics(t, "zero dim", func() { New(2, 0, 3) })
	assertPanics(t, "negative dim", func() { New(-1) })
}

func TestScalarTensor(t *testing.T) {
	s := New()
	if s.Size() != 1 || s.Rank() != 0 {
		t.Fatalf("scalar: size=%d rank=%d", s.Size(), s.Rank())
	}
	s.Set(3.5)
	if s.At() != 3.5 {
		t.Fatalf("At() = %v, want 3.5", s.At())
	}
}

func TestAtSetRowMajorOrder(t *testing.T) {
	x := New(2, 3)
	x.Set(1, 0, 0)
	x.Set(2, 0, 2)
	x.Set(3, 1, 0)
	want := []float32{1, 0, 2, 3, 0, 0}
	for i, v := range x.Data() {
		if v != want[i] {
			t.Fatalf("data[%d] = %v, want %v (layout %v)", i, v, want[i], x.Data())
		}
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	x := New(2, 2)
	assertPanics(t, "row overflow", func() { x.At(2, 0) })
	assertPanics(t, "negative", func() { x.At(0, -1) })
	assertPanics(t, "wrong rank", func() { x.At(1) })
}

func TestFromSliceSharesStorage(t *testing.T) {
	d := []float32{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	d[0] = 9
	if x.At(0, 0) != 9 {
		t.Fatal("FromSlice must wrap, not copy")
	}
	assertPanics(t, "length mismatch", func() { FromSlice(d, 3, 2) })
}

func TestReshapeSharesStorage(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(99, 0, 0)
	if x.At(0, 0) != 99 {
		t.Fatal("Reshape must return a view")
	}
	assertPanics(t, "volume mismatch", func() { x.Reshape(4, 2) })
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := x.Clone()
	y.Set(7, 0)
	if x.At(0) != 1 {
		t.Fatal("Clone must copy storage")
	}
}

func TestShapeReturnsCopy(t *testing.T) {
	x := New(2, 3)
	s := x.Shape()
	s[0] = 99
	if x.Dim(0) != 2 {
		t.Fatal("Shape() must return a defensive copy")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{10, 20, 30, 40}, 2, 2)

	if got := Add(a, b).Data(); got[3] != 44 {
		t.Errorf("Add: %v", got)
	}
	if got := Sub(b, a).Data(); got[0] != 9 {
		t.Errorf("Sub: %v", got)
	}
	if got := Mul(a, b).Data(); got[1] != 40 {
		t.Errorf("Mul: %v", got)
	}
	c := a.Clone()
	c.AddInPlace(b)
	if c.At(0, 0) != 11 {
		t.Errorf("AddInPlace: %v", c.Data())
	}
	c = a.Clone()
	c.SubInPlace(b)
	if c.At(0, 0) != -9 {
		t.Errorf("SubInPlace: %v", c.Data())
	}
	c = a.Clone()
	c.MulInPlace(b)
	if c.At(1, 1) != 160 {
		t.Errorf("MulInPlace: %v", c.Data())
	}
	c = a.Clone()
	c.Scale(2)
	if c.At(1, 1) != 8 {
		t.Errorf("Scale: %v", c.Data())
	}
	if got := Scaled(a, -1).At(0, 1); got != -2 {
		t.Errorf("Scaled: %v", got)
	}
	c = a.Clone()
	c.AxpyInPlace(0.5, b)
	if c.At(0, 0) != 6 {
		t.Errorf("AxpyInPlace: %v", c.Data())
	}
	assertPanics(t, "shape mismatch", func() { Add(a, New(3, 3)) })
}

func TestAddRowVectorAndSumRowsAreAdjoint(t *testing.T) {
	r := rng.New(1)
	x := New(4, 5)
	x.FillNormal(r, 0, 1)
	v := New(5)
	v.FillNormal(r, 0, 1)
	g := New(4, 5)
	g.FillNormal(r, 0, 1)

	// <x + 1·vᵀ, g> - <x, g> == <v, SumRows(g)>
	withBias := x.Clone()
	withBias.AddRowVector(v)
	lhs := Dot(withBias, g) - Dot(x, g)
	rhs := Dot(v, SumRows(g))
	if diff := lhs - rhs; diff > 1e-3 || diff < -1e-3 {
		t.Fatalf("adjoint mismatch: %v vs %v", lhs, rhs)
	}
}

func TestSumMeanMaxDotNorm(t *testing.T) {
	x := FromSlice([]float32{1, -2, 3, 4}, 4)
	if x.Sum() != 6 {
		t.Errorf("Sum = %v", x.Sum())
	}
	if x.Mean() != 1.5 {
		t.Errorf("Mean = %v", x.Mean())
	}
	if x.Max() != 4 {
		t.Errorf("Max = %v", x.Max())
	}
	if got := Dot(x, x); got != 30 {
		t.Errorf("Dot = %v", got)
	}
	if n := x.Norm(); n < 5.47 || n > 5.48 {
		t.Errorf("Norm = %v", n)
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.New(2)
	x := New(3, 7)
	x.FillNormal(r, 0, 1)
	tt := Transpose(Transpose(x))
	if !AllClose(x, tt, 0) {
		t.Fatal("Transpose(Transpose(x)) != x")
	}
	y := Transpose(x)
	if y.Dim(0) != 7 || y.Dim(1) != 3 {
		t.Fatalf("transpose shape %v", y.Shape())
	}
	if y.At(2, 1) != x.At(1, 2) {
		t.Fatal("transpose element mismatch")
	}
}

func TestSoftmaxRows(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 1000, 1001, 1002}, 2, 3)
	s := SoftmaxRows(x)
	for r := 0; r < 2; r++ {
		var sum float64
		for c := 0; c < 3; c++ {
			v := s.At(r, c)
			if v <= 0 || v >= 1 {
				t.Fatalf("softmax[%d,%d] = %v out of (0,1)", r, c, v)
			}
			sum += float64(v)
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("row %d sums to %v", r, sum)
		}
	}
	// Shift invariance: row 1 is row 0 + 999, so softmax must match.
	for c := 0; c < 3; c++ {
		if d := s.At(0, c) - s.At(1, c); d > 1e-6 || d < -1e-6 {
			t.Fatalf("softmax not shift-invariant at col %d", c)
		}
	}
}

func TestArgmaxRows(t *testing.T) {
	x := FromSlice([]float32{1, 5, 2, 9, 0, 3}, 2, 3)
	got := ArgmaxRows(x)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgmaxRows = %v, want [1 0]", got)
	}
}

func TestClipInPlace(t *testing.T) {
	x := FromSlice([]float32{-10, -0.5, 0.5, 10}, 4)
	x.ClipInPlace(1)
	want := []float32{-1, -0.5, 0.5, 1}
	for i, v := range x.Data() {
		if v != want[i] {
			t.Fatalf("Clip: %v, want %v", x.Data(), want)
		}
	}
	assertPanics(t, "bad limit", func() { x.ClipInPlace(0) })
}

func TestConcatSplitRowsRoundTrip(t *testing.T) {
	r := rng.New(3)
	a := New(2, 4)
	b := New(3, 4)
	c := New(1, 4)
	for _, x := range []*Tensor{a, b, c} {
		x.FillNormal(r, 0, 1)
	}
	cat := ConcatRows(a, b, c)
	if cat.Dim(0) != 6 || cat.Dim(1) != 4 {
		t.Fatalf("concat shape %v", cat.Shape())
	}
	parts := SplitRows(cat, []int{2, 3, 1})
	for i, orig := range []*Tensor{a, b, c} {
		if !AllClose(orig, parts[i], 0) {
			t.Fatalf("part %d does not round-trip", i)
		}
	}
	// Split blocks must be independent copies.
	parts[0].Set(99, 0, 0)
	if cat.At(0, 0) == 99 {
		t.Fatal("SplitRows must copy")
	}
	assertPanics(t, "bad sizes", func() { SplitRows(cat, []int{2, 2}) })
	assertPanics(t, "column mismatch", func() { ConcatRows(a, New(2, 5)) })
}

func TestHasNaN(t *testing.T) {
	x := New(3)
	if x.HasNaN() {
		t.Fatal("zeros reported NaN")
	}
	x.Set(float32(nan()), 1)
	if !x.HasNaN() {
		t.Fatal("NaN not detected")
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

func TestApply(t *testing.T) {
	x := FromSlice([]float32{-1, 2, -3}, 3)
	x.Apply(func(v float32) float32 {
		if v < 0 {
			return 0
		}
		return v
	})
	if x.At(0) != 0 || x.At(1) != 2 || x.At(2) != 0 {
		t.Fatalf("Apply: %v", x.Data())
	}
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}
