package compress

import (
	"bytes"
	"math"
	"sort"
	"testing"

	"medsplit/internal/rng"
	"medsplit/internal/tensor"
	"medsplit/internal/wire"
)

// forceWorkers pins the kernel fan-out for the duration of a test.
func forceWorkers(t *testing.T, n int) {
	t.Helper()
	old := forcedWorkers
	forcedWorkers = n
	t.Cleanup(func() { forcedWorkers = old })
}

// bigTensor crosses parallelThreshold so the fan-out actually splits.
func bigTensor(seed uint64) *tensor.Tensor {
	x := tensor.New(4, 3, 64, 64) // 49152 elements > 1<<15
	x.FillNormal(rng.New(seed), 0, 1)
	return x
}

// TestParallelKernelsBitIdentical holds every chunked kernel to the
// payload the serial path produces, bit for bit: the per-element math
// is unchanged, so worker count must not show up in the bytes.
func TestParallelKernelsBitIdentical(t *testing.T) {
	x := bigTensor(11)
	y := bigTensor(12)
	for _, codec := range []wire.ReusableCodec{wire.RawCodec{}, Float16{}, Int8{}} {
		forceWorkers(t, 1)
		serial := codec.EncodeTensors(x, y)
		forceWorkers(t, 8)
		parallel := codec.EncodeTensors(x, y)
		if !bytes.Equal(serial, parallel) {
			t.Errorf("%s: parallel encode differs from serial", codec.Name())
		}
		// Decode side: parallel decode of the serial payload must
		// reproduce the serial decode exactly.
		forceWorkers(t, 1)
		want, err := codec.DecodeTensors(serial)
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		forceWorkers(t, 8)
		got, err := codec.DecodeTensors(serial)
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		for i := range want {
			if !tensor.AllClose(want[i], got[i], 0) {
				t.Errorf("%s: parallel decode differs from serial (tensor %d)", codec.Name(), i)
			}
		}
	}
}

// TestRangeOfMatchesSerial checks the chunked min/max reduction against
// the scalar pass on sizes around the parallel threshold.
func TestRangeOfMatchesSerial(t *testing.T) {
	r := rng.New(3)
	for _, n := range []int{1, 2, 1000, parallelThreshold - 1, parallelThreshold, parallelThreshold + 13, 1 << 17} {
		d := make([]float32, n)
		for i := range d {
			d[i] = float32(r.Norm())
		}
		wantLo, wantHi := rangeOfSerial(d)
		forceWorkers(t, 7)
		lo, hi := rangeOf(d)
		forcedWorkers = 0
		if lo != wantLo || hi != wantHi {
			t.Fatalf("n=%d: rangeOf = (%v,%v), serial (%v,%v)", n, lo, hi, wantLo, wantHi)
		}
	}
}

// refTopKIndices is the original full-sort selection, kept as the
// semantic reference for the quickselect replacement.
func refTopKIndices(d []float32, k int) []int {
	idx := make([]int, len(d))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		va, vb := d[idx[a]], d[idx[b]]
		if va < 0 {
			va = -va
		}
		if vb < 0 {
			vb = -vb
		}
		return va > vb
	})
	top := idx[:k]
	sort.Ints(top)
	return top
}

// TestQuickselectMatchesSortUnique: with unique magnitudes the kept
// index set is fully determined, so quickselect must match the
// reference sort exactly.
func TestQuickselectMatchesSortUnique(t *testing.T) {
	r := rng.New(4)
	for _, n := range []int{1, 2, 7, 100, 4096, 1 << 16} {
		d := make([]float32, n)
		for i := range d {
			// i-dependent offset keeps magnitudes unique.
			d[i] = float32(r.Norm()) + float32(i)*1e-3
		}
		for _, k := range []int{1, n / 10, n / 2, n} {
			if k < 1 {
				k = 1
			}
			want := refTopKIndices(d, k)
			got := topKIndices(d, k, nil)
			if len(got) != len(want) {
				t.Fatalf("n=%d k=%d: got %d indices, want %d", n, k, len(got), len(want))
			}
			for i := range want {
				if int(got[i]) != want[i] {
					t.Fatalf("n=%d k=%d: index %d: got %d, want %d", n, k, i, got[i], want[i])
				}
			}
		}
	}
}

// TestQuickselectTieTolerance: with exact magnitude ties at the
// selection boundary the index choice is unspecified, but the multiset
// of kept magnitudes must match the reference (the codec's documented
// tolerance).
func TestQuickselectTieTolerance(t *testing.T) {
	// Many exact ties: values drawn from a tiny alphabet.
	r := rng.New(5)
	n := 10000
	d := make([]float32, n)
	vals := []float32{-2, -1, -0.5, 0.5, 1, 2}
	for i := range d {
		d[i] = vals[int(r.Uint64()%uint64(len(vals)))]
	}
	for _, k := range []int{1, 100, n / 3, n} {
		want := refTopKIndices(d, k)
		got := topKIndices(d, k, nil)
		wantMags := make([]float64, len(want))
		gotMags := make([]float64, len(got))
		for i := range want {
			wantMags[i] = math.Abs(float64(d[want[i]]))
			gotMags[i] = math.Abs(float64(d[got[i]]))
		}
		sort.Float64s(wantMags)
		sort.Float64s(gotMags)
		for i := range wantMags {
			if wantMags[i] != gotMags[i] {
				t.Fatalf("k=%d: kept magnitude multiset differs at %d: %v vs %v", k, i, gotMags[i], wantMags[i])
			}
		}
		// Ascending index order is part of the contract.
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("k=%d: indices not strictly ascending at %d", k, i)
			}
		}
	}
}

// TestEncodeIntoMatchesEncode: the Into variants must produce the exact
// bytes of the allocating variants, for every codec, whether appending
// to an empty pooled buffer or after existing bytes.
func TestEncodeIntoMatchesEncode(t *testing.T) {
	x := randTensor(21, 5, 37)
	y := randTensor(22, 3, 3, 3)
	for _, codec := range []wire.ReusableCodec{wire.RawCodec{}, Float16{}, Int8{}, TopK{Fraction: 0.3}} {
		plain := codec.EncodeTensors(x, y)
		var pool wire.BufferPool
		buf := codec.EncodeTensorsInto(pool.Get(len(plain)), x, y)
		if !bytes.Equal(plain, buf) {
			t.Errorf("%s: EncodeTensorsInto differs from EncodeTensors", codec.Name())
		}
		prefixed := codec.EncodeTensorsInto([]byte{0xAA, 0xBB}, x, y)
		if !bytes.Equal(prefixed[2:], plain) {
			t.Errorf("%s: EncodeTensorsInto after prefix differs", codec.Name())
		}
	}
}

// TestDecodeIntoReusesStorage: decoding a same-shape payload into the
// previous round's tensors must reuse their backing arrays — the
// zero-allocation contract of the steady-state round loop.
func TestDecodeIntoReusesStorage(t *testing.T) {
	x := randTensor(23, 6, 50)
	for _, codec := range []wire.ReusableCodec{wire.RawCodec{}, Float16{}, Int8{}, TopK{Fraction: 0.4}} {
		payload := codec.EncodeTensors(x)
		dst, err := codec.DecodeTensorsInto(nil, payload)
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		before := &dst[0].Data()[0]
		dst2, err := codec.DecodeTensorsInto(dst, payload)
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		if &dst2[0].Data()[0] != before {
			t.Errorf("%s: DecodeTensorsInto reallocated same-shape storage", codec.Name())
		}
		want, err := codec.DecodeTensors(payload)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.AllClose(dst2[0], want[0], 0) {
			t.Errorf("%s: reused decode differs from fresh decode", codec.Name())
		}
	}
}

// TestWideTensorCount: payload counts above 255 survive the round trip
// for every codec (the old one-byte count silently truncated them).
func TestWideTensorCount(t *testing.T) {
	ts := make([]*tensor.Tensor, 300)
	for i := range ts {
		ts[i] = randTensor(uint64(100+i), 2)
	}
	for _, codec := range []wire.ReusableCodec{wire.RawCodec{}, Float16{}, Int8{}, TopK{Fraction: 1}} {
		got, err := codec.DecodeTensors(codec.EncodeTensors(ts...))
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		if len(got) != len(ts) {
			t.Fatalf("%s: %d tensors decoded, want %d", codec.Name(), len(got), len(ts))
		}
		// Spot-check a tensor beyond the old 255 ceiling. f16/int8/topk
		// are lossy, so compare shape plus a loose value check.
		if !tensor.SameShape(got[299], ts[299]) {
			t.Fatalf("%s: tensor 299 shape lost", codec.Name())
		}
		if !tensor.AllClose(got[299], ts[299], 0.05) {
			t.Fatalf("%s: tensor 299 values lost", codec.Name())
		}
	}
}

// TestTopKScratchReuseAcrossSizes guards the pooled index scratch: a
// large selection followed by a small one must not leak stale indices.
func TestTopKScratchReuseAcrossSizes(t *testing.T) {
	big := bigTensor(31)
	small := randTensor(32, 3, 4)
	c := TopK{Fraction: 0.5}
	if _, err := c.DecodeTensors(c.EncodeTensors(big)); err != nil {
		t.Fatal(err)
	}
	got, err := c.DecodeTensors(c.EncodeTensors(small))
	if err != nil {
		t.Fatal(err)
	}
	// Every nonzero decoded entry must match the source.
	for i, v := range got[0].Data() {
		if v != 0 && v != small.Data()[i] {
			t.Fatalf("entry %d: %v, want %v or 0", i, v, small.Data()[i])
		}
	}
}

func BenchmarkQuickselectVsSort(b *testing.B) {
	x := bigTensor(41)
	d := x.Data()
	k := len(d) / 10
	b.Run("quickselect", func(b *testing.B) {
		var idx []int32
		for i := 0; i < b.N; i++ {
			idx = topKIndices(d, k, idx)
		}
	})
	b.Run("fullsort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			refTopKIndices(d, k)
		}
	})
}
