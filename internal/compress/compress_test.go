package compress

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"medsplit/internal/rng"
	"medsplit/internal/tensor"
	"medsplit/internal/wire"
)

func randTensor(seed uint64, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	t.FillNormal(rng.New(seed), 0, 1)
	return t
}

func TestFloat16RoundTripAccuracy(t *testing.T) {
	x := randTensor(1, 8, 33)
	payload := Float16{}.EncodeTensors(x)
	ts, err := Float16{}.DecodeTensors(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || !tensor.SameShape(x, ts[0]) {
		t.Fatal("shape lost")
	}
	// Half precision: ~2^-11 relative error.
	for i, v := range x.Data() {
		got := ts[0].Data()[i]
		if math.Abs(float64(got-v)) > 2e-3*math.Max(1, math.Abs(float64(v))) {
			t.Fatalf("element %d: %v -> %v", i, v, got)
		}
	}
	// Byte cost: header + shape + 2 bytes/element.
	if len(payload) >= 4*x.Size() {
		t.Fatalf("f16 payload %d bytes, raw would be %d", len(payload), 4*x.Size())
	}
}

func TestFloat16SpecialValues(t *testing.T) {
	cases := []float32{0, -0, 1, -1, 0.5, 65504, -65504, 1e-8, float32(math.Inf(1)), float32(math.Inf(-1))}
	x := tensor.FromSlice(cases, len(cases))
	ts, err := Float16{}.DecodeTensors(Float16{}.EncodeTensors(x))
	if err != nil {
		t.Fatal(err)
	}
	got := ts[0].Data()
	if got[0] != 0 || got[2] != 1 || got[3] != -1 || got[4] != 0.5 {
		t.Fatalf("basic values: %v", got)
	}
	if got[5] != 65504 || got[6] != -65504 {
		t.Fatalf("max half: %v %v", got[5], got[6])
	}
	if !math.IsInf(float64(got[8]), 1) || !math.IsInf(float64(got[9]), -1) {
		t.Fatalf("infinities: %v %v", got[8], got[9])
	}
}

func TestFloat16RoundTripProperty(t *testing.T) {
	f := func(v float32) bool {
		if math.IsNaN(float64(v)) {
			return true // NaN payloads are not preserved bit-exactly
		}
		back := f16ToF32(f32ToF16(v))
		if math.Abs(float64(v)) > 65504 {
			return math.IsInf(float64(back), 0) || math.Abs(float64(back)) == 65504
		}
		if v == 0 {
			return back == 0
		}
		rel := math.Abs(float64(back-v)) / math.Max(math.Abs(float64(v)), 6e-5)
		return rel < 1.5e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestInt8RoundTrip(t *testing.T) {
	x := randTensor(2, 4, 50)
	payload := Int8{}.EncodeTensors(x)
	ts, err := Int8{}.DecodeTensors(payload)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := rangeOf(x.Data())
	maxErr := float64(hi-lo) / 255 // one quantization step
	for i, v := range x.Data() {
		if math.Abs(float64(ts[0].Data()[i]-v)) > maxErr {
			t.Fatalf("element %d: %v -> %v (step %v)", i, v, ts[0].Data()[i], maxErr)
		}
	}
	// 1 byte per element plus small headers.
	if len(payload) > x.Size()+64 {
		t.Fatalf("int8 payload %d bytes for %d elements", len(payload), x.Size())
	}
}

func TestInt8ConstantTensor(t *testing.T) {
	x := tensor.Full(3.25, 2, 3)
	ts, err := Int8{}.DecodeTensors(Int8{}.EncodeTensors(x))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range ts[0].Data() {
		if v != 3.25 {
			t.Fatalf("constant tensor decoded as %v", v)
		}
	}
}

func TestTopKKeepsLargestMagnitudes(t *testing.T) {
	x := tensor.FromSlice([]float32{0.1, -9, 0.2, 7, -0.3, 0.05}, 6)
	c := TopK{Fraction: 2.0 / 6.0}
	ts, err := c.DecodeTensors(c.EncodeTensors(x))
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0, -9, 0, 7, 0, 0}
	for i, v := range ts[0].Data() {
		if v != want[i] {
			t.Fatalf("decoded %v, want %v", ts[0].Data(), want)
		}
	}
}

func TestTopKByteSavings(t *testing.T) {
	x := randTensor(3, 32, 64)
	c := TopK{Fraction: 0.1}
	payload := c.EncodeTensors(x)
	raw := wire.RawCodec{}.EncodeTensors(x)
	// 10% kept at 8 bytes/entry ≈ 20% of raw size.
	if len(payload) >= len(raw)/2 {
		t.Fatalf("topk payload %d bytes, raw %d", len(payload), len(raw))
	}
}

func TestTopKDefaultsFraction(t *testing.T) {
	if got := (TopK{}).Name(); got != "topk-0.10" {
		t.Fatalf("name %q", got)
	}
	if got := (TopK{Fraction: 2}).fraction(); got != 0.1 {
		t.Fatalf("out-of-range fraction must default, got %v", got)
	}
}

func TestMultiTensorPayloads(t *testing.T) {
	a := randTensor(4, 3, 4)
	b := randTensor(5, 2, 2, 2)
	for _, codec := range []wire.Codec{Float16{}, Int8{}, TopK{Fraction: 0.5}} {
		ts, err := codec.DecodeTensors(codec.EncodeTensors(a, b))
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		if len(ts) != 2 || !tensor.SameShape(ts[0], a) || !tensor.SameShape(ts[1], b) {
			t.Fatalf("%s: shapes lost", codec.Name())
		}
	}
}

func TestCodecsRejectForeignPayloads(t *testing.T) {
	x := randTensor(6, 2, 2)
	payloads := map[string][]byte{
		"raw":  wire.RawCodec{}.EncodeTensors(x),
		"f16":  Float16{}.EncodeTensors(x),
		"int8": Int8{}.EncodeTensors(x),
		"topk": TopK{}.EncodeTensors(x),
	}
	codecs := map[string]wire.Codec{
		"f16":  Float16{},
		"int8": Int8{},
		"topk": TopK{},
	}
	for cname, codec := range codecs {
		for pname, payload := range payloads {
			if pname == cname {
				continue
			}
			if _, err := codec.DecodeTensors(payload); err == nil {
				t.Errorf("%s decoded a %s payload", cname, pname)
			}
		}
	}
}

func TestCodecsRejectTruncation(t *testing.T) {
	x := randTensor(7, 4, 4)
	for _, codec := range []wire.Codec{Float16{}, Int8{}, TopK{Fraction: 0.5}} {
		payload := codec.EncodeTensors(x)
		if _, err := codec.DecodeTensors(payload[:len(payload)-3]); !errors.Is(err, ErrBadPayload) {
			t.Errorf("%s: truncated payload: %v", codec.Name(), err)
		}
		if _, err := codec.DecodeTensors(append(payload, 1)); !errors.Is(err, ErrBadPayload) {
			t.Errorf("%s: trailing bytes: %v", codec.Name(), err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"raw", "f16", "int8", "topk-0.25"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, c.Name())
		}
	}
	if _, err := ByName("gzip"); err == nil {
		t.Fatal("unknown codec accepted")
	}
	if _, err := ByName("topk-7"); err == nil {
		t.Fatal("out-of-range topk accepted")
	}
}

func BenchmarkFloat16Encode(b *testing.B) {
	x := randTensor(1, 32, 2048)
	b.SetBytes(int64(4 * x.Size()))
	for i := 0; i < b.N; i++ {
		Float16{}.EncodeTensors(x)
	}
}

func BenchmarkInt8Encode(b *testing.B) {
	x := randTensor(1, 32, 2048)
	b.SetBytes(int64(4 * x.Size()))
	for i := 0; i < b.N; i++ {
		Int8{}.EncodeTensors(x)
	}
}
