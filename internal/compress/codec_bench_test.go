package compress

import (
	"testing"

	"medsplit/internal/rng"
	"medsplit/internal/tensor"
	"medsplit/internal/wire"
)

// Codec micro-benchmarks: encode and decode one activation-sized tensor
// batch ([32, 2048], the cut-layer shape of a width-scaled VGG front)
// per op, through both the allocating and the buffer-reusing paths. Run
// with -benchmem; the Into arms are the steady-state round path and
// should report ~zero allocs/op. The results feed BENCH_wire.json (see
// `make bench-save-wire`).

func benchTensor() *tensor.Tensor {
	x := tensor.New(32, 2048)
	x.FillNormal(rng.New(77), 0, 1)
	return x
}

func benchCodec(b *testing.B, codec wire.ReusableCodec) {
	x := benchTensor()
	payload := codec.EncodeTensors(x)
	b.Run("encode", func(b *testing.B) {
		b.SetBytes(int64(4 * x.Size()))
		for i := 0; i < b.N; i++ {
			codec.EncodeTensors(x)
		}
	})
	b.Run("encode_into", func(b *testing.B) {
		b.SetBytes(int64(4 * x.Size()))
		buf := make([]byte, 0, len(payload))
		for i := 0; i < b.N; i++ {
			buf = codec.EncodeTensorsInto(buf[:0], x)
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(int64(4 * x.Size()))
		for i := 0; i < b.N; i++ {
			if _, err := codec.DecodeTensors(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode_into", func(b *testing.B) {
		b.SetBytes(int64(4 * x.Size()))
		var dst []*tensor.Tensor
		for i := 0; i < b.N; i++ {
			var err error
			dst, err = codec.DecodeTensorsInto(dst, payload)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkCodecRaw(b *testing.B)  { benchCodec(b, wire.RawCodec{}) }
func BenchmarkCodecF16(b *testing.B)  { benchCodec(b, Float16{}) }
func BenchmarkCodecInt8(b *testing.B) { benchCodec(b, Int8{}) }
func BenchmarkCodecTopK(b *testing.B) { benchCodec(b, TopK{Fraction: 0.1}) }
