package compress

import (
	"runtime"
	"slices"
	"sync"

	"medsplit/internal/tensor/kernels"
)

// This file holds the codec number-crunching kernels: chunked parallel
// f32<->f16 conversion, the fused min/max + quantize pass behind the
// int8 codec, and the O(n) magnitude selection behind top-k. The
// per-element conversions route through the shared vectorized kernel
// layer (internal/tensor/kernels) — parallelism only changes which
// goroutine handles which chunk, and the kernel layer holds its vector
// and scalar variants bit-identical — so the differential tests hold
// the fanned-out kernels to the serial ones bit for bit (raw/f16/int8)
// or up to tie order (top-k).
//
// Note on f16 rounding: conversion follows the kernel layer's contract
// — IEEE round-to-nearest-even, matching hardware F16C/NEON converters
// — where the original scalar codec rounded ties away from zero. The
// codecs' accuracy contract (~2⁻¹¹ relative error) is unchanged; only
// exact-tie mantissas land one ULP differently than pre-kernel-layer
// payloads did.

// parallelThreshold is the element count below which the conversion
// kernels stay single-threaded: goroutine fan-out costs more than the
// loop itself on small activations.
const parallelThreshold = 1 << 15

// forcedWorkers, when positive, overrides GOMAXPROCS for the kernel
// fan-out. Tests set it to pin the serial path (1) or exercise the
// multi-goroutine path (>1) deterministically, race detector included.
var forcedWorkers int

func maxWorkers() int {
	if forcedWorkers > 0 {
		return forcedWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// serialChunk reports whether an n-element kernel should run on the
// calling goroutine. Call sites check it BEFORE building the closure
// they would hand to parallelChunks: the closure escapes into the
// goroutine fan-out, so constructing it heap-allocates even when the
// serial branch runs — a per-message cost on the zero-allocation path.
func serialChunk(n int) bool {
	return n < parallelThreshold || n <= 1 || maxWorkers() <= 1
}

// parallelChunks runs fn over [0,n) split into contiguous chunks, one
// per worker, when n crosses the threshold; otherwise serially.
func parallelChunks(n int, fn func(i0, i1 int)) {
	workers := maxWorkers()
	if workers > n {
		workers = n
	}
	if n < parallelThreshold || workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for i0 := 0; i0 < n; i0 += chunk {
		i1 := i0 + chunk
		if i1 > n {
			i1 = n
		}
		wg.Add(1)
		go func(i0, i1 int) {
			defer wg.Done()
			fn(i0, i1)
		}(i0, i1)
	}
	wg.Wait()
}

// putF16 converts src to IEEE-754 binary16 into dst (len(dst) must be
// 2*len(src)), fanning the branch-free-per-element loop out across
// cores for large tensors.
func putF16(dst []byte, src []float32) {
	if serialChunk(len(src)) {
		putF16Range(dst, src, 0, len(src))
		return
	}
	parallelChunks(len(src), func(i0, i1 int) {
		putF16Range(dst, src, i0, i1)
	})
}

func putF16Range(dst []byte, src []float32, i0, i1 int) {
	kernels.F32ToF16Bytes(dst[2*i0:2*i1], src[i0:i1])
}

// getF16 converts binary16 bytes back to float32 (len(src) must be
// 2*len(dst)).
func getF16(dst []float32, src []byte) {
	if serialChunk(len(dst)) {
		getF16Range(dst, src, 0, len(dst))
		return
	}
	parallelChunks(len(dst), func(i0, i1 int) {
		getF16Range(dst, src, i0, i1)
	})
}

func getF16Range(dst []float32, src []byte, i0, i1 int) {
	kernels.F16BytesToF32(dst[i0:i1], src[2*i0:2*i1])
}

// rangeOf returns the minimum and maximum of d in one fused pass,
// reduced over per-worker chunk partials. Chunk boundaries cannot
// change the result on finite data: min and max are order-independent.
// NaN inputs are outside the serial/parallel bit-for-bit contract —
// which NaNs a comparison scan ignores depends on where the scan
// starts, so chunking can land on a different (equally arbitrary)
// range. Training asserts numerical health upstream (Tensor.HasNaN);
// quantizing NaN activations is undefined either way.
func rangeOf(d []float32) (lo, hi float32) {
	if len(d) == 0 {
		return 0, 0
	}
	workers := maxWorkers()
	if len(d) < parallelThreshold || workers <= 1 {
		return rangeOfSerial(d)
	}
	if workers > len(d) {
		workers = len(d)
	}
	los := make([]float32, workers)
	his := make([]float32, workers)
	var wg sync.WaitGroup
	chunk := (len(d) + workers - 1) / workers
	w := 0
	for i0 := 0; i0 < len(d); i0 += chunk {
		i1 := i0 + chunk
		if i1 > len(d) {
			i1 = len(d)
		}
		wg.Add(1)
		go func(w, i0, i1 int) {
			defer wg.Done()
			los[w], his[w] = rangeOfSerial(d[i0:i1])
		}(w, i0, i1)
		w++
	}
	wg.Wait()
	lo, hi = los[0], his[0]
	for i := 1; i < w; i++ {
		if los[i] < lo {
			lo = los[i]
		}
		if his[i] > hi {
			hi = his[i]
		}
	}
	return lo, hi
}

// rangeOfSerial is the scalar reference min/max pass.
func rangeOfSerial(d []float32) (lo, hi float32) {
	lo, hi = d[0], d[0]
	for _, v := range d[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// quantize8 writes the linear 8-bit quantization of src into dst with
// the given range. The per-element formula matches the original scalar
// loop exactly, so chunking keeps the bytes bit-identical.
func quantize8(dst []byte, src []float32, lo float32, scale float32) {
	if serialChunk(len(src)) {
		quantize8Range(dst, src, lo, scale, 0, len(src))
		return
	}
	parallelChunks(len(src), func(i0, i1 int) {
		quantize8Range(dst, src, lo, scale, i0, i1)
	})
}

func quantize8Range(dst []byte, src []float32, lo, scale float32, i0, i1 int) {
	kernels.Quantize8(dst[i0:i1], src[i0:i1], lo, scale)
}

// dequantize8 writes lo + src[i]*step into dst.
func dequantize8(dst []float32, src []byte, lo, step float32) {
	if serialChunk(len(dst)) {
		dequantize8Range(dst, src, lo, step, 0, len(dst))
		return
	}
	parallelChunks(len(dst), func(i0, i1 int) {
		dequantize8Range(dst, src, lo, step, i0, i1)
	})
}

func dequantize8Range(dst []float32, src []byte, lo, step float32, i0, i1 int) {
	kernels.Dequantize8(dst[i0:i1], src[i0:i1], lo, step)
}

// topkScratch recycles the index scratch topKIndices partitions, so the
// encode path stops allocating an O(n) slice per tensor per round.
var topkScratch = sync.Pool{New: func() any { return new([]int32) }}

// topKIndices returns the indices of the k largest-magnitude entries of
// d, in ascending index order for cache-friendly decode. Selection is
// an O(n) iterative quickselect on magnitudes (median-of-three pivots)
// instead of a full O(n log n) sort; only the k survivors are sorted.
//
// Tie-breaking among entries with equal magnitude at the selection
// boundary is unspecified, as it was with the unstable sort this
// replaces: the multiset of kept magnitudes is deterministic, the index
// choice among exact ties is not part of the codec contract.
func topKIndices(d []float32, k int, out []int32) []int32 {
	boxed := topkScratch.Get().(*[]int32)
	idx := *boxed
	if cap(idx) < len(d) {
		idx = make([]int32, len(d))
	}
	idx = idx[:len(d)]
	for i := range idx {
		idx[i] = int32(i)
	}
	quickselectTopK(d, idx, k)
	out = append(out[:0], idx[:k]...)
	*boxed = idx
	topkScratch.Put(boxed)
	slices.Sort(out)
	return out
}

// mag returns |v| without the sign bit dance of math.Abs on float32.
func mag(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// quickselectTopK partitions idx so that its first k entries index the
// k largest-magnitude values of d (in arbitrary order).
func quickselectTopK(d []float32, idx []int32, k int) {
	lo, hi := 0, len(idx)
	for hi-lo > 1 && k > lo && k < hi {
		// Median-of-three pivot: deterministic, and resistant to the
		// sorted/constant inputs that sink a fixed-position pivot.
		mid := lo + (hi-lo)/2
		a, b, c := mag(d[idx[lo]]), mag(d[idx[mid]]), mag(d[idx[hi-1]])
		var pivot float32
		switch {
		case (a >= b) == (a <= c):
			pivot = a
		case (b >= a) == (b <= c):
			pivot = b
		default:
			pivot = c
		}
		// Three-way partition around pivot magnitude: [lo,i) greater,
		// [i,j) equal, [j,hi) smaller. Descending, so "top k" is a prefix.
		i, j, p := lo, lo, hi
		for j < p {
			m := mag(d[idx[j]])
			switch {
			case m > pivot:
				idx[i], idx[j] = idx[j], idx[i]
				i++
				j++
			case m < pivot:
				p--
				idx[j], idx[p] = idx[p], idx[j]
			default:
				j++
			}
		}
		switch {
		case k <= i:
			hi = i
		case k >= j:
			lo = j
		default:
			return // boundary falls inside the equal run: any tie works
		}
	}
}
