// Package compress implements lossy tensor codecs for the split
// protocol's activation path: float16 truncation, linear int8
// quantization, and magnitude top-k sparsification. They are the
// standard communication-reduction techniques in the split/federated
// learning literature and give the repo's compression ablation its
// bytes-vs-accuracy trade-off curve.
//
// Every codec satisfies wire.Codec and produces self-describing
// payloads; both protocol ends agree on the codec at handshake time.
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"medsplit/internal/tensor"
	"medsplit/internal/wire"
)

// ErrBadPayload is returned when a compressed payload cannot be decoded.
var ErrBadPayload = errors.New("compress: bad payload")

// Payload kind bytes. wire's raw tensor payloads use kind 1; these must
// stay distinct from wire's kinds so mismatched codecs fail loudly.
const (
	kindF16  byte = 0x11
	kindInt8 byte = 0x12
	kindTopK byte = 0x13
)

// maxDecodeElems mirrors the tensor decoder's allocation cap.
const maxDecodeElems = 1 << 28

// Float16 ships IEEE-754 half-precision values: 2 bytes per element,
// ~3 decimal digits of precision — usually indistinguishable training
// curves at half the wire cost.
type Float16 struct{}

var _ wire.Codec = Float16{}

// Name returns "f16".
func (Float16) Name() string { return "f16" }

// EncodeTensors packs tensors as half-precision.
func (Float16) EncodeTensors(ts ...*tensor.Tensor) []byte {
	size := 2
	for _, t := range ts {
		size += shapeSize(t) + 2*t.Size()
	}
	buf := make([]byte, 0, size)
	buf = append(buf, kindF16, byte(len(ts)))
	for _, t := range ts {
		buf = appendShape(buf, t)
		for _, v := range t.Data() {
			buf = binary.LittleEndian.AppendUint16(buf, f32ToF16(v))
		}
	}
	return buf
}

// DecodeTensors unpacks half-precision tensors.
func (Float16) DecodeTensors(buf []byte) ([]*tensor.Tensor, error) {
	rest, n, err := checkHeader(buf, kindF16, "f16")
	if err != nil {
		return nil, err
	}
	out := make([]*tensor.Tensor, 0, n)
	for i := 0; i < n; i++ {
		var shape []int
		var vol int
		shape, vol, rest, err = readShape(rest)
		if err != nil {
			return nil, err
		}
		if len(rest) < 2*vol {
			return nil, fmt.Errorf("%w: truncated f16 data", ErrBadPayload)
		}
		t := tensor.New(shape...)
		d := t.Data()
		for j := range d {
			d[j] = f16ToF32(binary.LittleEndian.Uint16(rest[2*j:]))
		}
		rest = rest[2*vol:]
		out = append(out, t)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(rest))
	}
	return out, nil
}

// Int8 ships linearly quantized values: a per-tensor [min, max] range
// plus one byte per element (256 levels). Four-fold reduction over
// float32 with visible but usually tolerable quantization noise.
type Int8 struct{}

var _ wire.Codec = Int8{}

// Name returns "int8".
func (Int8) Name() string { return "int8" }

// EncodeTensors packs tensors as 8-bit quantized values.
func (Int8) EncodeTensors(ts ...*tensor.Tensor) []byte {
	size := 2
	for _, t := range ts {
		size += shapeSize(t) + 8 + t.Size()
	}
	buf := make([]byte, 0, size)
	buf = append(buf, kindInt8, byte(len(ts)))
	for _, t := range ts {
		buf = appendShape(buf, t)
		lo, hi := rangeOf(t.Data())
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(lo))
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(hi))
		scale := float32(0)
		if hi > lo {
			scale = 255 / (hi - lo)
		}
		for _, v := range t.Data() {
			q := (v - lo) * scale
			if q < 0 {
				q = 0
			} else if q > 255 {
				q = 255
			}
			buf = append(buf, byte(q+0.5))
		}
	}
	return buf
}

// DecodeTensors unpacks 8-bit quantized tensors.
func (Int8) DecodeTensors(buf []byte) ([]*tensor.Tensor, error) {
	rest, n, err := checkHeader(buf, kindInt8, "int8")
	if err != nil {
		return nil, err
	}
	out := make([]*tensor.Tensor, 0, n)
	for i := 0; i < n; i++ {
		var shape []int
		var vol int
		shape, vol, rest, err = readShape(rest)
		if err != nil {
			return nil, err
		}
		if len(rest) < 8+vol {
			return nil, fmt.Errorf("%w: truncated int8 data", ErrBadPayload)
		}
		lo := math.Float32frombits(binary.LittleEndian.Uint32(rest))
		hi := math.Float32frombits(binary.LittleEndian.Uint32(rest[4:]))
		rest = rest[8:]
		step := float32(0)
		if hi > lo {
			step = (hi - lo) / 255
		}
		t := tensor.New(shape...)
		d := t.Data()
		for j := range d {
			d[j] = lo + float32(rest[j])*step
		}
		rest = rest[vol:]
		out = append(out, t)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(rest))
	}
	return out, nil
}

// TopK ships only the fraction of entries with the largest magnitudes
// (index/value pairs); the rest decode as zero. Classic gradient
// sparsification — aggressive on activations, included as the far end
// of the ablation.
type TopK struct {
	// Fraction of entries to keep, in (0, 1]. The zero value keeps 10%.
	Fraction float64
}

var _ wire.Codec = TopK{}

// Name returns e.g. "topk-0.10".
func (c TopK) Name() string { return fmt.Sprintf("topk-%.2f", c.fraction()) }

func (c TopK) fraction() float64 {
	if c.Fraction <= 0 || c.Fraction > 1 {
		return 0.1
	}
	return c.Fraction
}

// EncodeTensors packs the top-|k| entries of each tensor.
func (c TopK) EncodeTensors(ts ...*tensor.Tensor) []byte {
	buf := []byte{kindTopK, byte(len(ts))}
	for _, t := range ts {
		buf = appendShape(buf, t)
		d := t.Data()
		k := int(math.Ceil(c.fraction() * float64(len(d))))
		if k > len(d) {
			k = len(d)
		}
		idx := topKIndices(d, k)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(k))
		for _, i := range idx {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(i))
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(d[i]))
		}
	}
	return buf
}

// DecodeTensors unpacks sparse tensors, zero-filling dropped entries.
func (c TopK) DecodeTensors(buf []byte) ([]*tensor.Tensor, error) {
	rest, n, err := checkHeader(buf, kindTopK, "topk")
	if err != nil {
		return nil, err
	}
	out := make([]*tensor.Tensor, 0, n)
	for i := 0; i < n; i++ {
		var shape []int
		var vol int
		shape, vol, rest, err = readShape(rest)
		if err != nil {
			return nil, err
		}
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: missing top-k count", ErrBadPayload)
		}
		k := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if k < 0 || k > vol || len(rest) < 8*k {
			return nil, fmt.Errorf("%w: bad top-k count %d", ErrBadPayload, k)
		}
		t := tensor.New(shape...)
		d := t.Data()
		for j := 0; j < k; j++ {
			pos := binary.LittleEndian.Uint32(rest[8*j:])
			if int(pos) >= vol {
				return nil, fmt.Errorf("%w: top-k index %d out of %d", ErrBadPayload, pos, vol)
			}
			d[pos] = math.Float32frombits(binary.LittleEndian.Uint32(rest[8*j+4:]))
		}
		rest = rest[8*k:]
		out = append(out, t)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(rest))
	}
	return out, nil
}

// ByName returns the codec for a handshake name. It recognizes "raw",
// "f16", "int8" and "topk-<frac>".
func ByName(name string) (wire.Codec, error) {
	switch name {
	case "raw":
		return wire.RawCodec{}, nil
	case "f16":
		return Float16{}, nil
	case "int8":
		return Int8{}, nil
	}
	var frac float64
	if _, err := fmt.Sscanf(name, "topk-%f", &frac); err == nil && frac > 0 && frac <= 1 {
		return TopK{Fraction: frac}, nil
	}
	return nil, fmt.Errorf("compress: unknown codec %q", name)
}

// --- helpers ---

func shapeSize(t *tensor.Tensor) int { return 1 + 4*t.Rank() }

func appendShape(buf []byte, t *tensor.Tensor) []byte {
	shape := t.Shape()
	buf = append(buf, byte(len(shape)))
	for _, d := range shape {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d))
	}
	return buf
}

func readShape(buf []byte) (shape []int, vol int, rest []byte, err error) {
	if len(buf) < 1 {
		return nil, 0, nil, fmt.Errorf("%w: missing shape", ErrBadPayload)
	}
	rank := int(buf[0])
	buf = buf[1:]
	if len(buf) < 4*rank {
		return nil, 0, nil, fmt.Errorf("%w: truncated shape", ErrBadPayload)
	}
	shape = make([]int, rank)
	vol = 1
	for i := range shape {
		d := int(binary.LittleEndian.Uint32(buf[4*i:]))
		if d <= 0 {
			return nil, 0, nil, fmt.Errorf("%w: dimension %d", ErrBadPayload, d)
		}
		shape[i] = d
		vol *= d
		if vol > maxDecodeElems {
			return nil, 0, nil, fmt.Errorf("%w: volume exceeds cap", ErrBadPayload)
		}
	}
	return shape, vol, buf[4*rank:], nil
}

func checkHeader(buf []byte, kind byte, name string) (rest []byte, n int, err error) {
	if len(buf) < 2 || buf[0] != kind {
		return nil, 0, fmt.Errorf("%w: not a %s payload", ErrBadPayload, name)
	}
	return buf[2:], int(buf[1]), nil
}

func rangeOf(d []float32) (lo, hi float32) {
	if len(d) == 0 {
		return 0, 0
	}
	lo, hi = d[0], d[0]
	for _, v := range d[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// topKIndices returns the indices of the k largest-magnitude entries,
// in ascending index order for cache-friendly decode.
func topKIndices(d []float32, k int) []int {
	idx := make([]int, len(d))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection via full sort is fine at the sizes the protocol
	// ships (batch × activation width); avoid premature cleverness.
	sort.Slice(idx, func(a, b int) bool {
		va, vb := d[idx[a]], d[idx[b]]
		if va < 0 {
			va = -va
		}
		if vb < 0 {
			vb = -vb
		}
		return va > vb
	})
	top := idx[:k]
	sort.Ints(top)
	return top
}

// f32ToF16 converts to IEEE-754 binary16 with round-to-nearest-even.
func f32ToF16(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23&0xff) - 127 + 15
	mant := b & 0x7fffff
	switch {
	case exp >= 0x1f: // overflow or inf/nan
		if b&0x7fffffff > 0x7f800000 { // NaN
			return sign | 0x7e00
		}
		return sign | 0x7c00 // ±inf
	case exp <= 0: // subnormal or underflow to zero
		if exp < -10 {
			return sign
		}
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		return sign | uint16((mant+half)>>shift)
	default:
		// Round mantissa to 10 bits (nearest, ties away — close enough
		// to nearest-even for training noise).
		rounded := mant + 0x1000
		if rounded&0x800000 != 0 { // mantissa overflow bumps exponent
			rounded = 0
			exp++
			if exp >= 0x1f {
				return sign | 0x7c00
			}
		}
		return sign | uint16(exp)<<10 | uint16(rounded>>13)
	}
}

// f16ToF32 converts from IEEE-754 binary16.
func f16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)
	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1f:
		return math.Float32frombits(sign | 0x7f800000 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}
