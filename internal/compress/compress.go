// Package compress implements lossy tensor codecs for the split
// protocol's activation path: float16 truncation, linear int8
// quantization, and magnitude top-k sparsification. They are the
// standard communication-reduction techniques in the split/federated
// learning literature and give the repo's compression ablation its
// bytes-vs-accuracy trade-off curve.
//
// Every codec satisfies wire.ReusableCodec: the Into variants append
// into caller-owned (typically pooled) payload buffers and decode into
// caller-owned tensors, so the steady-state round loop performs no
// payload or tensor allocations; the element kernels fan out across
// cores for large tensors (see kernels.go). Payloads are
// self-describing and both protocol ends agree on the codec at
// handshake time.
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"medsplit/internal/tensor"
	"medsplit/internal/tensor/kernels"
	"medsplit/internal/wire"
)

// ErrBadPayload is returned when a compressed payload cannot be decoded.
var ErrBadPayload = errors.New("compress: bad payload")

// Payload kind bytes. wire's raw tensor payloads use kind 1; these must
// stay distinct from wire's kinds so mismatched codecs fail loudly.
const (
	kindF16  byte = 0x11
	kindInt8 byte = 0x12
	kindTopK byte = 0x13
)

// maxDecodeElems mirrors the tensor decoder's allocation cap.
const maxDecodeElems = 1 << 28

// headerSize is the payload prefix: kind byte + uint16 tensor count
// (one byte would silently truncate counts above 255 — see the
// matching widening in package wire).
const headerSize = 3

// Float16 ships IEEE-754 half-precision values: 2 bytes per element,
// ~3 decimal digits of precision — usually indistinguishable training
// curves at half the wire cost.
type Float16 struct{}

var _ wire.ReusableCodec = Float16{}

// Name returns "f16".
func (Float16) Name() string { return "f16" }

// EncodeTensors packs tensors as half-precision.
func (c Float16) EncodeTensors(ts ...*tensor.Tensor) []byte {
	size := headerSize
	for _, t := range ts {
		size += shapeSize(t) + 2*t.Size()
	}
	return c.EncodeTensorsInto(make([]byte, 0, size), ts...)
}

// EncodeTensorsInto packs tensors as half-precision into buf.
func (Float16) EncodeTensorsInto(buf []byte, ts ...*tensor.Tensor) []byte {
	buf = appendHeader(buf, kindF16, len(ts))
	for _, t := range ts {
		buf = appendShape(buf, t)
		d := t.Data()
		base := len(buf)
		buf = growBytes(buf, 2*len(d))
		putF16(buf[base:], d)
	}
	return buf
}

// DecodeTensors unpacks half-precision tensors.
func (c Float16) DecodeTensors(buf []byte) ([]*tensor.Tensor, error) {
	return c.DecodeTensorsInto(nil, buf)
}

// DecodeTensorsInto unpacks half-precision tensors, reusing dst.
func (Float16) DecodeTensorsInto(dst []*tensor.Tensor, buf []byte) ([]*tensor.Tensor, error) {
	rest, n, err := checkHeader(buf, kindF16, "f16")
	if err != nil {
		return nil, err
	}
	out := ensureTensorSlots(dst, n)
	shapeBuf := make([]int, 0, 8)
	for i := 0; i < n; i++ {
		var vol int
		shapeBuf, vol, rest, err = readShape(rest, shapeBuf)
		if err != nil {
			return nil, err
		}
		if len(rest) < 2*vol {
			return nil, fmt.Errorf("%w: truncated f16 data", ErrBadPayload)
		}
		t := tensor.EnsureShape(out[i], shapeBuf...)
		getF16(t.Data(), rest)
		rest = rest[2*vol:]
		out[i] = t
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(rest))
	}
	return out, nil
}

// Int8 ships linearly quantized values: a per-tensor [min, max] range
// plus one byte per element (256 levels). Four-fold reduction over
// float32 with visible but usually tolerable quantization noise.
type Int8 struct{}

var _ wire.ReusableCodec = Int8{}

// Name returns "int8".
func (Int8) Name() string { return "int8" }

// EncodeTensors packs tensors as 8-bit quantized values.
func (c Int8) EncodeTensors(ts ...*tensor.Tensor) []byte {
	size := headerSize
	for _, t := range ts {
		size += shapeSize(t) + 8 + t.Size()
	}
	return c.EncodeTensorsInto(make([]byte, 0, size), ts...)
}

// EncodeTensorsInto packs tensors as 8-bit quantized values into buf,
// with a fused parallel min/max pass feeding the quantizer.
func (Int8) EncodeTensorsInto(buf []byte, ts ...*tensor.Tensor) []byte {
	buf = appendHeader(buf, kindInt8, len(ts))
	for _, t := range ts {
		buf = appendShape(buf, t)
		d := t.Data()
		lo, hi := rangeOf(d)
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(lo))
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(hi))
		scale := float32(0)
		if hi > lo {
			scale = 255 / (hi - lo)
		}
		base := len(buf)
		buf = growBytes(buf, len(d))
		quantize8(buf[base:], d, lo, scale)
	}
	return buf
}

// DecodeTensors unpacks 8-bit quantized tensors.
func (c Int8) DecodeTensors(buf []byte) ([]*tensor.Tensor, error) {
	return c.DecodeTensorsInto(nil, buf)
}

// DecodeTensorsInto unpacks 8-bit quantized tensors, reusing dst.
func (Int8) DecodeTensorsInto(dst []*tensor.Tensor, buf []byte) ([]*tensor.Tensor, error) {
	rest, n, err := checkHeader(buf, kindInt8, "int8")
	if err != nil {
		return nil, err
	}
	out := ensureTensorSlots(dst, n)
	shapeBuf := make([]int, 0, 8)
	for i := 0; i < n; i++ {
		var vol int
		shapeBuf, vol, rest, err = readShape(rest, shapeBuf)
		if err != nil {
			return nil, err
		}
		if len(rest) < 8+vol {
			return nil, fmt.Errorf("%w: truncated int8 data", ErrBadPayload)
		}
		lo := math.Float32frombits(binary.LittleEndian.Uint32(rest))
		hi := math.Float32frombits(binary.LittleEndian.Uint32(rest[4:]))
		rest = rest[8:]
		step := float32(0)
		if hi > lo {
			step = (hi - lo) / 255
		}
		t := tensor.EnsureShape(out[i], shapeBuf...)
		dequantize8(t.Data(), rest, lo, step)
		rest = rest[vol:]
		out[i] = t
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(rest))
	}
	return out, nil
}

// TopK ships only the fraction of entries with the largest magnitudes
// (index/value pairs); the rest decode as zero. Classic gradient
// sparsification — aggressive on activations, included as the far end
// of the ablation.
type TopK struct {
	// Fraction of entries to keep, in (0, 1]. The zero value keeps 10%.
	Fraction float64
}

var _ wire.ReusableCodec = TopK{}

// Name returns e.g. "topk-0.10".
func (c TopK) Name() string { return fmt.Sprintf("topk-%.2f", c.fraction()) }

func (c TopK) fraction() float64 {
	if c.Fraction <= 0 || c.Fraction > 1 {
		return 0.1
	}
	return c.Fraction
}

// EncodeTensors packs the top-|k| entries of each tensor.
func (c TopK) EncodeTensors(ts ...*tensor.Tensor) []byte {
	size := headerSize
	for _, t := range ts {
		size += shapeSize(t) + 4 + 8*c.kFor(t.Size())
	}
	return c.EncodeTensorsInto(make([]byte, 0, size), ts...)
}

func (c TopK) kFor(n int) int {
	k := int(math.Ceil(c.fraction() * float64(n)))
	if k > n {
		k = n
	}
	return k
}

// EncodeTensorsInto packs the top-|k| entries of each tensor into buf.
// Selection is an O(n) quickselect on magnitudes (see topKIndices);
// exact magnitude ties at the k-th position may resolve to different
// indices than another implementation, which is within the codec's
// contract.
func (c TopK) EncodeTensorsInto(buf []byte, ts ...*tensor.Tensor) []byte {
	buf = appendHeader(buf, kindTopK, len(ts))
	var idx []int32
	for _, t := range ts {
		buf = appendShape(buf, t)
		d := t.Data()
		k := c.kFor(len(d))
		idx = topKIndices(d, k, idx)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(k))
		base := len(buf)
		buf = growBytes(buf, 8*k)
		for j, i := range idx {
			binary.LittleEndian.PutUint32(buf[base+8*j:], uint32(i))
			binary.LittleEndian.PutUint32(buf[base+8*j+4:], math.Float32bits(d[i]))
		}
	}
	return buf
}

// DecodeTensors unpacks sparse tensors, zero-filling dropped entries.
func (c TopK) DecodeTensors(buf []byte) ([]*tensor.Tensor, error) {
	return c.DecodeTensorsInto(nil, buf)
}

// DecodeTensorsInto unpacks sparse tensors, reusing dst.
func (TopK) DecodeTensorsInto(dst []*tensor.Tensor, buf []byte) ([]*tensor.Tensor, error) {
	rest, n, err := checkHeader(buf, kindTopK, "topk")
	if err != nil {
		return nil, err
	}
	out := ensureTensorSlots(dst, n)
	shapeBuf := make([]int, 0, 8)
	for i := 0; i < n; i++ {
		var vol int
		shapeBuf, vol, rest, err = readShape(rest, shapeBuf)
		if err != nil {
			return nil, err
		}
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: missing top-k count", ErrBadPayload)
		}
		k := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if k < 0 || k > vol || len(rest) < 8*k {
			return nil, fmt.Errorf("%w: bad top-k count %d", ErrBadPayload, k)
		}
		t := tensor.EnsureShape(out[i], shapeBuf...)
		t.Zero() // reused storage: dropped entries must decode as zero
		d := t.Data()
		for j := 0; j < k; j++ {
			pos := binary.LittleEndian.Uint32(rest[8*j:])
			if int(pos) >= vol {
				return nil, fmt.Errorf("%w: top-k index %d out of %d", ErrBadPayload, pos, vol)
			}
			d[pos] = math.Float32frombits(binary.LittleEndian.Uint32(rest[8*j+4:]))
		}
		rest = rest[8*k:]
		out[i] = t
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(rest))
	}
	return out, nil
}

// ByName returns the codec for a handshake name. It recognizes "raw",
// "f16", "int8" and "topk-<frac>".
func ByName(name string) (wire.Codec, error) {
	switch name {
	case "raw":
		return wire.RawCodec{}, nil
	case "f16":
		return Float16{}, nil
	case "int8":
		return Int8{}, nil
	}
	var frac float64
	if _, err := fmt.Sscanf(name, "topk-%f", &frac); err == nil && frac > 0 && frac <= 1 {
		return TopK{Fraction: frac}, nil
	}
	return nil, fmt.Errorf("compress: unknown codec %q", name)
}

// --- helpers ---

func shapeSize(t *tensor.Tensor) int { return 1 + 4*t.Rank() }

// appendHeader writes the kind byte and uint16 tensor count, panicking
// on counts the format cannot represent (mirrors wire.EncodeTensorsInto).
func appendHeader(buf []byte, kind byte, n int) []byte {
	if n > wire.MaxTensorsPerPayload {
		panic(fmt.Sprintf("compress: %d tensors exceed the payload maximum %d", n, wire.MaxTensorsPerPayload))
	}
	var hdr [headerSize]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint16(hdr[1:], uint16(n))
	return append(buf, hdr[:]...)
}

func appendShape(buf []byte, t *tensor.Tensor) []byte {
	shape := t.Shape()
	buf = append(buf, byte(len(shape)))
	for _, d := range shape {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d))
	}
	return buf
}

// growBytes extends buf by n bytes, reallocating only when capacity is
// short.
func growBytes(buf []byte, n int) []byte {
	if cap(buf)-len(buf) >= n {
		return buf[:len(buf)+n]
	}
	out := make([]byte, len(buf)+n, 2*(len(buf)+n))
	copy(out, buf)
	return out
}

// ensureTensorSlots grows dst to hold n tensor pointers, reusing its
// backing array, and returns the n-slot prefix.
func ensureTensorSlots(dst []*tensor.Tensor, n int) []*tensor.Tensor {
	for len(dst) < n {
		dst = append(dst, nil)
	}
	return dst[:n]
}

// readShape parses a shape prefix into the reusable `into` slice,
// returning the shape, its volume and the remaining bytes.
func readShape(buf []byte, into []int) (shape []int, vol int, rest []byte, err error) {
	if len(buf) < 1 {
		return nil, 0, nil, fmt.Errorf("%w: missing shape", ErrBadPayload)
	}
	rank := int(buf[0])
	buf = buf[1:]
	if len(buf) < 4*rank {
		return nil, 0, nil, fmt.Errorf("%w: truncated shape", ErrBadPayload)
	}
	shape = into[:0]
	vol = 1
	for i := 0; i < rank; i++ {
		d := int(binary.LittleEndian.Uint32(buf[4*i:]))
		if d <= 0 {
			return nil, 0, nil, fmt.Errorf("%w: dimension %d", ErrBadPayload, d)
		}
		shape = append(shape, d)
		vol *= d
		if vol > maxDecodeElems {
			return nil, 0, nil, fmt.Errorf("%w: volume exceeds cap", ErrBadPayload)
		}
	}
	return shape, vol, buf[4*rank:], nil
}

func checkHeader(buf []byte, kind byte, name string) (rest []byte, n int, err error) {
	if len(buf) < headerSize || buf[0] != kind {
		return nil, 0, fmt.Errorf("%w: not a %s payload", ErrBadPayload, name)
	}
	return buf[headerSize:], int(binary.LittleEndian.Uint16(buf[1:])), nil
}

// f32ToF16 and f16ToF32 are the kernel layer's scalar converters
// (IEEE round-to-nearest-even, matching the hardware F16C path).
func f32ToF16(f float32) uint16 { return kernels.F32ToF16Scalar(f) }

func f16ToF32(h uint16) float32 { return kernels.F16ToF32Scalar(h) }
