// Package geonet models the wide-area network between geo-distributed
// medical platforms and the central server: per-site links with one-way
// latency and bandwidth, and a synchronous-round wall-clock estimator.
//
// Byte counts — the paper's Fig. 4 metric — are independent of the
// network, so geonet is not in the byte-accounting path; it answers the
// complementary question the geo-distributed setting raises: how long a
// training round takes when hospitals sit behind real WAN links. The
// clock is simulated (no sleeping), so sweeping topologies is free.
package geonet

import (
	"fmt"
	"math"
	"time"

	"medsplit/internal/rng"
)

// Region names a site (a hospital or the server's datacenter).
type Region string

// Link models one platform's WAN path to the server.
type Link struct {
	// LatencyMs is the one-way propagation delay in milliseconds.
	LatencyMs float64
	// Mbps is the usable bandwidth in megabits per second (symmetric).
	Mbps float64
}

// TransferTime returns how long shipping the given number of bytes one
// way takes over the link: latency plus serialization at Mbps.
func (l Link) TransferTime(bytes int64) time.Duration {
	if l.Mbps <= 0 {
		panic(fmt.Sprintf("geonet: non-positive bandwidth %v", l.Mbps))
	}
	if bytes < 0 {
		panic(fmt.Sprintf("geonet: negative byte count %d", bytes))
	}
	seconds := l.LatencyMs/1e3 + float64(bytes)*8/(l.Mbps*1e6)
	return time.Duration(seconds * float64(time.Second))
}

// Topology maps each platform region to its link toward the server.
type Topology struct {
	Server Region
	Links  map[Region]Link
}

// Link returns the link for a region.
func (t *Topology) Link(r Region) (Link, error) {
	l, ok := t.Links[r]
	if !ok {
		return Link{}, fmt.Errorf("geonet: no link for region %q", r)
	}
	return l, nil
}

// RoundTime estimates the wall-clock duration of one synchronous round
// in which platform i ships up[i] bytes to the server and receives
// down[i] bytes back, plus the given server compute time. The round ends
// when the slowest platform finishes (synchronous SGD and the split
// protocol both barrier on the slowest site).
func (t *Topology) RoundTime(regions []Region, up, down []int64, serverCompute time.Duration) (time.Duration, error) {
	if len(regions) != len(up) || len(regions) != len(down) {
		return 0, fmt.Errorf("geonet: %d regions, %d up, %d down", len(regions), len(up), len(down))
	}
	var slowest time.Duration
	for i, r := range regions {
		l, err := t.Link(r)
		if err != nil {
			return 0, err
		}
		d := l.TransferTime(up[i]) + l.TransferTime(down[i])
		if d > slowest {
			slowest = d
		}
	}
	return slowest + serverCompute, nil
}

// SplitRoundShape describes one training round of the split protocol
// in enough detail for the schedule-aware estimators: the per-platform
// payload of each of the paper's four messages, plus per-platform
// compute times. Byte slices are indexed by platform, matching the
// regions slice passed to the estimators.
type SplitRoundShape struct {
	// ActsBytes / LogitsBytes / LossGradBytes / CutGradBytes are the
	// per-platform payloads of the four-message exchange (message 1
	// through 4 of the paper's Fig. 2/3).
	ActsBytes, LogitsBytes, LossGradBytes, CutGradBytes []int64
	// ServerCompute is the server's forward+backward+step time for one
	// platform's minibatch.
	ServerCompute time.Duration
	// PlatformCompute is the platform's loss-gradient computation time
	// between receiving logits and shipping the loss gradient.
	PlatformCompute time.Duration
}

func (s SplitRoundShape) validate(regions int) error {
	for _, b := range [][]int64{s.ActsBytes, s.LogitsBytes, s.LossGradBytes, s.CutGradBytes} {
		if len(b) != regions {
			return fmt.Errorf("geonet: split shape has %d entries for %d regions", len(b), regions)
		}
	}
	return nil
}

// SequentialSplitRoundTime estimates one round of RoundModeSequential:
// the server handles platforms strictly one at a time and every
// transfer sits on the critical path, so the round is the sum over
// platforms of all four transfers plus both sides' compute.
func (t *Topology) SequentialSplitRoundTime(regions []Region, s SplitRoundShape) (time.Duration, error) {
	if err := s.validate(len(regions)); err != nil {
		return 0, err
	}
	var total time.Duration
	for i, r := range regions {
		l, err := t.Link(r)
		if err != nil {
			return 0, err
		}
		total += l.TransferTime(s.ActsBytes[i]) + s.ServerCompute +
			l.TransferTime(s.LogitsBytes[i]) + s.PlatformCompute +
			l.TransferTime(s.LossGradBytes[i]) + l.TransferTime(s.CutGradBytes[i])
	}
	return total, nil
}

// PipelinedSplitRoundTime estimates one steady-state round of
// RoundModePipelined: activation uploads overlap the server's work on
// earlier platforms and cut-gradient downloads overlap its work on
// later platforms, so only the interactive logits -> loss-grad exchange
// (plus compute) stays on the per-platform critical path.
//
// At depth 1 a platform's activations start uploading when the round
// starts (all links in parallel); at depth >= 2 platforms additionally
// overlap the upload with the previous round (one-step-stale L1
// forward), which the model treats as activations already buffered at
// the server. The estimate is deliberately simple — a closed-form
// schedule walk, not a packet simulation — but it is deterministic and
// ranks schedules correctly: pipelined <= sequential for any topology.
func (t *Topology) PipelinedSplitRoundTime(regions []Region, s SplitRoundShape, depth int) (time.Duration, error) {
	if err := s.validate(len(regions)); err != nil {
		return 0, err
	}
	if depth < 1 {
		return 0, fmt.Errorf("geonet: pipeline depth %d", depth)
	}
	var serverFree, lastDone time.Duration
	for i, r := range regions {
		l, err := t.Link(r)
		if err != nil {
			return 0, err
		}
		// When the server is ready for platform i, its activations are
		// either already buffered (depth >= 2: prefetched during the
		// previous round) or have been uploading since round start.
		var actsReady time.Duration
		if depth < 2 {
			actsReady = l.TransferTime(s.ActsBytes[i])
		}
		start := serverFree
		if actsReady > start {
			start = actsReady
		}
		serverFree = start + s.ServerCompute +
			l.TransferTime(s.LogitsBytes[i]) + s.PlatformCompute + l.TransferTime(s.LossGradBytes[i])
		// The cut gradient ships from a writer goroutine while the
		// server moves on to the next platform.
		if done := serverFree + l.TransferTime(s.CutGradBytes[i]); done > lastDone {
			lastDone = done
		}
	}
	if lastDone > serverFree {
		return lastDone, nil
	}
	return serverFree, nil
}

// DefaultHospitalTopology returns the running example used throughout
// the repo: a central server in a Seoul datacenter (the paper's future
// work names Seoul National University Hospital) with domestic hospital
// links, one cross-country site, and one intercontinental site.
func DefaultHospitalTopology() *Topology {
	return &Topology{
		Server: "seoul-dc",
		Links: map[Region]Link{
			"snuh-seoul":     {LatencyMs: 2, Mbps: 1000},
			"pusan-nat-univ": {LatencyMs: 8, Mbps: 500},
			"chungang-univ":  {LatencyMs: 3, Mbps: 800},
			"korea-univ":     {LatencyMs: 3, Mbps: 800},
			"ucf-orlando":    {LatencyMs: 95, Mbps: 200},
		},
	}
}

// SyntheticClinics deterministically generates an n-clinic topology
// around the same Seoul datacenter: a mix of metro, regional, rural and
// overseas links whose parameters are drawn from a seeded RNG, so the
// scale-out scenarios (25, 100 sites and beyond) have a reproducible
// WAN to run on. Regions come back as "clinic-000" … in platform-index
// order, ready to zip with a platform slice.
func SyntheticClinics(n int, seed uint64) (*Topology, []Region) {
	if n <= 0 {
		panic(fmt.Sprintf("geonet: %d clinics", n))
	}
	r := rng.New(seed ^ 0xC11121C5)
	classes := []struct {
		weight         int
		latLo, latHi   float64 // one-way ms
		mbpsLo, mbpsHi float64
	}{
		{40, 1, 5, 500, 1000}, // metro fiber
		{35, 5, 15, 100, 500}, // regional
		{20, 15, 40, 20, 100}, // rural
		{5, 80, 150, 50, 200}, // overseas partner sites
	}
	totalW := 0
	for _, c := range classes {
		totalW += c.weight
	}
	topo := &Topology{Server: "seoul-dc", Links: make(map[Region]Link, n)}
	regions := make([]Region, n)
	for i := 0; i < n; i++ {
		w := r.Intn(totalW)
		ci := 0
		for w >= classes[ci].weight {
			w -= classes[ci].weight
			ci++
		}
		c := classes[ci]
		reg := Region(fmt.Sprintf("clinic-%03d", i))
		topo.Links[reg] = Link{
			LatencyMs: c.latLo + (c.latHi-c.latLo)*r.Float64(),
			Mbps:      c.mbpsLo + (c.mbpsHi-c.mbpsLo)*r.Float64(),
		}
		regions[i] = reg
	}
	return topo, regions
}

// SyntheticClinicCompute deterministically generates an n-clinic
// per-platform compute profile to pair with SyntheticClinics: most
// sites compute near the base duration, a tail of under-provisioned
// clinics runs slower, and stragglerFrac of the fleet (rounded up, at
// least one when the fraction is positive) is a genuine straggler at
// 8× base — slow *compute*, the failure mode slow links cannot model.
// The draw is seeded, so equal (n, seed, base, stragglerFrac) give
// bit-identical profiles.
func SyntheticClinicCompute(n int, seed uint64, base time.Duration, stragglerFrac float64) []time.Duration {
	if n <= 0 {
		panic(fmt.Sprintf("geonet: %d clinics", n))
	}
	if base < 0 {
		panic(fmt.Sprintf("geonet: negative base compute %v", base))
	}
	if stragglerFrac < 0 || stragglerFrac > 1 {
		panic(fmt.Sprintf("geonet: straggler fraction %v outside [0,1]", stragglerFrac))
	}
	r := rng.New(seed ^ 0xC0DE517E)
	out := make([]time.Duration, n)
	for i := range out {
		// Healthy spread: 0.75×–1.5× base (modern vs aging hardware).
		out[i] = time.Duration(float64(base) * (0.75 + 0.75*r.Float64()))
	}
	stragglers := int(math.Ceil(stragglerFrac * float64(n)))
	for s := 0; s < stragglers; s++ {
		// A seeded pick with replacement keeps the draw order (and thus
		// the profile) stable as stragglerFrac grows.
		out[r.Intn(n)] = 8 * base
	}
	return out
}

// Clock accumulates simulated time. It is not safe for concurrent use;
// the experiment loop owns it.
type Clock struct {
	now time.Duration
}

// Advance moves the clock forward by d (negative d panics).
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic("geonet: clock cannot move backwards")
	}
	c.now += d
}

// Now returns the elapsed simulated time.
func (c *Clock) Now() time.Duration { return c.now }
