package geonet

import (
	"testing"
	"time"
)

func TestTransferTime(t *testing.T) {
	l := Link{LatencyMs: 10, Mbps: 100}
	// 0 bytes: pure latency.
	if got := l.TransferTime(0); got != 10*time.Millisecond {
		t.Fatalf("latency-only = %v", got)
	}
	// 12.5 MB at 100 Mbps = 1s, plus 10ms latency.
	if got := l.TransferTime(12_500_000); got != 1010*time.Millisecond {
		t.Fatalf("1s transfer = %v", got)
	}
}

func TestTransferTimePanics(t *testing.T) {
	assertPanics(t, "zero bandwidth", func() { Link{LatencyMs: 1}.TransferTime(1) })
	assertPanics(t, "negative bytes", func() { Link{Mbps: 10}.TransferTime(-1) })
}

func TestTopologyLinkLookup(t *testing.T) {
	topo := DefaultHospitalTopology()
	if _, err := topo.Link("snuh-seoul"); err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Link("nowhere"); err == nil {
		t.Fatal("unknown region must error")
	}
}

func TestRoundTimeIsSlowestPlatform(t *testing.T) {
	topo := &Topology{
		Server: "dc",
		Links: map[Region]Link{
			"fast": {LatencyMs: 1, Mbps: 1000},
			"slow": {LatencyMs: 50, Mbps: 10},
		},
	}
	regions := []Region{"fast", "slow"}
	up := []int64{1_000_000, 1_000_000}
	down := []int64{1_000_000, 1_000_000}
	got, err := topo.RoundTime(regions, up, down, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Slow platform: 2×(50ms + 8Mb/10Mbps=800ms) = 1.7s, + 5ms compute.
	want := 1700*time.Millisecond + 5*time.Millisecond
	if got != want {
		t.Fatalf("round time %v, want %v", got, want)
	}
}

func TestRoundTimeValidation(t *testing.T) {
	topo := DefaultHospitalTopology()
	if _, err := topo.RoundTime([]Region{"snuh-seoul"}, []int64{1, 2}, []int64{1}, 0); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := topo.RoundTime([]Region{"nowhere"}, []int64{1}, []int64{1}, 0); err == nil {
		t.Fatal("unknown region must error")
	}
}

// fiveHospitalShape is a representative round: VGG-lite-sized
// activations/cut-grads (the big payloads) and small logits/loss-grads,
// across the default 5-site topology.
func fiveHospitalShape(k int) SplitRoundShape {
	acts := make([]int64, k)
	logits := make([]int64, k)
	lossg := make([]int64, k)
	cutg := make([]int64, k)
	for i := range acts {
		acts[i] = 2_000_000
		logits[i] = 4_000
		lossg[i] = 4_000
		cutg[i] = 2_000_000
	}
	return SplitRoundShape{
		ActsBytes: acts, LogitsBytes: logits, LossGradBytes: lossg, CutGradBytes: cutg,
		ServerCompute: 20 * time.Millisecond, PlatformCompute: 2 * time.Millisecond,
	}
}

func defaultRegions() []Region {
	return []Region{"snuh-seoul", "pusan-nat-univ", "chungang-univ", "korea-univ", "ucf-orlando"}
}

// The overlapped schedule can only help: for any depth, pipelined must
// be no slower than sequential, and depth >= 2 (activations prefetched
// a round ahead) no slower than depth 1.
func TestPipelinedRoundTimeBeatsSequential(t *testing.T) {
	topo := DefaultHospitalTopology()
	regions := defaultRegions()
	shape := fiveHospitalShape(len(regions))

	seq, err := topo.SequentialSplitRoundTime(regions, shape)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := topo.PipelinedSplitRoundTime(regions, shape, 1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := topo.PipelinedSplitRoundTime(regions, shape, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d1 > seq {
		t.Fatalf("pipelined depth 1 (%v) slower than sequential (%v)", d1, seq)
	}
	if d2 > d1 {
		t.Fatalf("pipelined depth 2 (%v) slower than depth 1 (%v)", d2, d1)
	}
	// On this WAN-heavy shape the overlap must be substantial, not a
	// rounding artifact: the big transfers leave the critical path.
	if d2 >= seq*3/4 {
		t.Fatalf("pipelined depth 2 (%v) saves < 25%% of sequential (%v)", d2, seq)
	}
}

// With zero-byte transfers the three estimators agree: only compute
// remains, and nothing overlaps with anything.
func TestPipelinedRoundTimeComputeOnly(t *testing.T) {
	topo := &Topology{Server: "dc", Links: map[Region]Link{"a": {LatencyMs: 0, Mbps: 1000}}}
	shape := SplitRoundShape{
		ActsBytes: []int64{0}, LogitsBytes: []int64{0}, LossGradBytes: []int64{0}, CutGradBytes: []int64{0},
		ServerCompute: 7 * time.Millisecond, PlatformCompute: 3 * time.Millisecond,
	}
	seq, err := topo.SequentialSplitRoundTime([]Region{"a"}, shape)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := topo.PipelinedSplitRoundTime([]Region{"a"}, shape, 2)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 10*time.Millisecond || pipe != 10*time.Millisecond {
		t.Fatalf("compute-only round: seq %v, pipe %v, want 10ms both", seq, pipe)
	}
}

func TestSplitRoundTimeValidation(t *testing.T) {
	topo := DefaultHospitalTopology()
	regions := defaultRegions()
	bad := fiveHospitalShape(len(regions) - 1)
	if _, err := topo.SequentialSplitRoundTime(regions, bad); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := topo.PipelinedSplitRoundTime(regions, bad, 1); err == nil {
		t.Fatal("length mismatch must error")
	}
	good := fiveHospitalShape(len(regions))
	if _, err := topo.PipelinedSplitRoundTime(regions, good, 0); err == nil {
		t.Fatal("zero depth must error")
	}
	if _, err := topo.PipelinedSplitRoundTime([]Region{"nowhere"}, fiveHospitalShape(1), 1); err == nil {
		t.Fatal("unknown region must error")
	}
}

// The synthetic compute profile is deterministic under its seed,
// bounded by the documented spread, and plants genuine stragglers.
func TestSyntheticClinicCompute(t *testing.T) {
	const n = 100
	base := 10 * time.Millisecond
	a := SyntheticClinicCompute(n, 7, base, 0.1)
	b := SyntheticClinicCompute(n, 7, base, 0.1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("clinic %d: %v vs %v under the same seed", i, a[i], b[i])
		}
	}
	stragglers := 0
	for i, d := range a {
		if d == 8*base {
			stragglers++
			continue
		}
		if d < 3*base/4 || d > 3*base/2 {
			t.Fatalf("clinic %d compute %v outside the healthy 0.75×–1.5× spread", i, d)
		}
	}
	if stragglers == 0 || stragglers > n/5 {
		t.Fatalf("%d stragglers out of %d with fraction 0.1", stragglers, n)
	}
	none := SyntheticClinicCompute(n, 7, base, 0)
	for i, d := range none {
		if d == 8*base {
			t.Fatalf("clinic %d is a straggler with fraction 0", i)
		}
	}
	if c := SyntheticClinicCompute(n, 8, base, 0.1); func() bool {
		for i := range a {
			if a[i] != c[i] {
				return false
			}
		}
		return true
	}() {
		t.Fatal("different seeds produced identical profiles")
	}
	assertPanics(t, "zero clinics", func() { SyntheticClinicCompute(0, 1, base, 0) })
	assertPanics(t, "negative base", func() { SyntheticClinicCompute(1, 1, -base, 0) })
	assertPanics(t, "fraction out of range", func() { SyntheticClinicCompute(1, 1, base, 1.5) })
}

func TestClock(t *testing.T) {
	var c Clock
	c.Advance(time.Second)
	c.Advance(time.Second)
	if c.Now() != 2*time.Second {
		t.Fatalf("Now = %v", c.Now())
	}
	assertPanics(t, "backwards", func() { c.Advance(-1) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}
