package geonet

import (
	"testing"
	"time"
)

func TestTransferTime(t *testing.T) {
	l := Link{LatencyMs: 10, Mbps: 100}
	// 0 bytes: pure latency.
	if got := l.TransferTime(0); got != 10*time.Millisecond {
		t.Fatalf("latency-only = %v", got)
	}
	// 12.5 MB at 100 Mbps = 1s, plus 10ms latency.
	if got := l.TransferTime(12_500_000); got != 1010*time.Millisecond {
		t.Fatalf("1s transfer = %v", got)
	}
}

func TestTransferTimePanics(t *testing.T) {
	assertPanics(t, "zero bandwidth", func() { Link{LatencyMs: 1}.TransferTime(1) })
	assertPanics(t, "negative bytes", func() { Link{Mbps: 10}.TransferTime(-1) })
}

func TestTopologyLinkLookup(t *testing.T) {
	topo := DefaultHospitalTopology()
	if _, err := topo.Link("snuh-seoul"); err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Link("nowhere"); err == nil {
		t.Fatal("unknown region must error")
	}
}

func TestRoundTimeIsSlowestPlatform(t *testing.T) {
	topo := &Topology{
		Server: "dc",
		Links: map[Region]Link{
			"fast": {LatencyMs: 1, Mbps: 1000},
			"slow": {LatencyMs: 50, Mbps: 10},
		},
	}
	regions := []Region{"fast", "slow"}
	up := []int64{1_000_000, 1_000_000}
	down := []int64{1_000_000, 1_000_000}
	got, err := topo.RoundTime(regions, up, down, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Slow platform: 2×(50ms + 8Mb/10Mbps=800ms) = 1.7s, + 5ms compute.
	want := 1700*time.Millisecond + 5*time.Millisecond
	if got != want {
		t.Fatalf("round time %v, want %v", got, want)
	}
}

func TestRoundTimeValidation(t *testing.T) {
	topo := DefaultHospitalTopology()
	if _, err := topo.RoundTime([]Region{"snuh-seoul"}, []int64{1, 2}, []int64{1}, 0); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := topo.RoundTime([]Region{"nowhere"}, []int64{1}, []int64{1}, 0); err == nil {
		t.Fatal("unknown region must error")
	}
}

func TestClock(t *testing.T) {
	var c Clock
	c.Advance(time.Second)
	c.Advance(time.Second)
	if c.Now() != 2*time.Second {
		t.Fatalf("Now = %v", c.Now())
	}
	assertPanics(t, "backwards", func() { c.Advance(-1) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}
