package atomicfile

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileInstallsContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	want := []byte("round 7 boundary state")
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("read back %q, want %q", got, want)
	}
	// No temp litter: the directory holds exactly the installed file.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "state.bin" {
		t.Fatalf("directory holds %v, want just state.bin", ents)
	}
}

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt")
	if err := WriteFile(path, []byte("generation 1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("generation 2")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "generation 2" {
		t.Fatalf("read back %q, want generation 2", got)
	}
}

func TestWriteWithFailureLeavesPreviousFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt")
	if err := WriteFile(path, []byte("good")); err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("mid-write crash")
	err := WriteWith(path, func(w io.Writer) error {
		if _, werr := w.Write([]byte("half a checkp")); werr != nil {
			return werr
		}
		return boom
	})
	if err == nil || !strings.Contains(err.Error(), "mid-write crash") {
		t.Fatalf("error = %v, want the fill error", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(got) != "good" {
		t.Fatalf("previous content %q destroyed, want %q", got, "good")
	}
	ents, err2 := os.ReadDir(dir)
	if err2 != nil {
		t.Fatal(err2)
	}
	if len(ents) != 1 {
		t.Fatalf("temp file leaked: %v", ents)
	}
}

func TestWriteWithFreshPathFailureLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fresh")
	err := WriteWith(path, func(io.Writer) error { return fmt.Errorf("nope") })
	if err == nil {
		t.Fatal("want error")
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Fatalf("final path exists after failed write: %v", serr)
	}
}

func TestWriteFileMissingDir(t *testing.T) {
	if err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x")); err == nil {
		t.Fatal("want error for missing directory")
	}
}

func TestRenameSealsUnderFinalName(t *testing.T) {
	dir := t.TempDir()
	open := filepath.Join(dir, "000001.open")
	if err := os.WriteFile(open, []byte("segment payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	sealed := filepath.Join(dir, "000001.seg")
	if err := Rename(open, sealed); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(open); !os.IsNotExist(err) {
		t.Fatalf("open name still present: %v", err)
	}
	got, err := os.ReadFile(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "segment payload" {
		t.Fatalf("sealed content %q", got)
	}
}
