// Package atomicfile is the one fsync-then-rename implementation behind
// every durable file install in medsplit: session checkpoints and abort
// stashes (internal/core), weights-only model checkpoints (internal/nn)
// and sealed WAL segments (internal/wal). The sequence is the classic
// crash-safe install:
//
//  1. write the full content to a temp file in the target directory,
//  2. fsync the temp file, so the bytes are on stable storage before
//     the name exists,
//  3. rename over the final path (atomic on POSIX filesystems),
//  4. fsync the directory, so the rename itself survives a power cut.
//
// Before this package existed the repo carried three slightly different
// temp+rename copies, none of which fsynced — a crash between the page
// cache and the platter could install a zero-length "checkpoint". One
// implementation means one place to get the durability story right.
package atomicfile

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically installs data at path with 0644 permissions.
// On any error the final path is untouched: either the previous file
// survives intact or (for a fresh path) no file appears.
func WriteFile(path string, data []byte) error {
	return WriteWith(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// WriteWith atomically installs the bytes produced by fill at path.
// fill streams into the temp file through a plain io.Writer, so large
// payloads (model checkpoints) never need a full in-memory copy here.
func WriteWith(path string, fill func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".atomic-*")
	if err != nil {
		return fmt.Errorf("atomicfile: creating temp in %s: %w", dir, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := fill(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("atomicfile: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("atomicfile: syncing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("atomicfile: closing %s: %w", path, err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("atomicfile: chmod %s: %w", path, err)
	}
	return Rename(tmp.Name(), path)
}

// Rename atomically moves an already-synced file over newpath and
// fsyncs the parent directory, making the rename durable. oldpath and
// newpath must live in the same directory (the WAL uses this directly
// to seal a finished segment under its final name).
func Rename(oldpath, newpath string) error {
	if err := os.Rename(oldpath, newpath); err != nil {
		return fmt.Errorf("atomicfile: installing %s: %w", newpath, err)
	}
	return syncDir(filepath.Dir(newpath))
}

// syncDir fsyncs a directory so a preceding rename survives a crash.
// Platforms whose directory handles reject Sync (some network and
// Windows filesystems) degrade to the pre-fsync behavior rather than
// failing the save.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("atomicfile: opening dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !ignorableSyncError(err) {
		return fmt.Errorf("atomicfile: syncing dir %s: %w", dir, err)
	}
	return nil
}

// ignorableSyncError reports whether a directory-fsync failure should
// be tolerated (filesystems that do not support syncing directories).
func ignorableSyncError(err error) bool {
	var pe *os.PathError
	if !errors.As(err, &pe) {
		return false
	}
	return pe.Op == "sync" || pe.Op == "fsync"
}
