package fedavg

import (
	"testing"

	"medsplit/internal/dataset"
	"medsplit/internal/models"
	"medsplit/internal/nn"
	"medsplit/internal/rng"
	"medsplit/internal/tensor"
	"medsplit/internal/transport"
)

func flatData(t *testing.T, classes, train, test int, seed uint64) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	tr, te := dataset.SynthCIFAR(dataset.SynthConfig{Classes: classes, Train: train, Test: test, Seed: seed})
	fl := func(d *dataset.Dataset) *dataset.Dataset {
		n := d.X.Dim(0)
		return &dataset.Dataset{X: d.X.Reshape(n, d.X.Size()/n), Labels: d.Labels, Classes: d.Classes}
	}
	return fl(tr), fl(te)
}

func buildModel(seed uint64, in, classes int) *nn.Sequential {
	return models.MLP(in, []int{32}, classes, rng.New(seed)).Net
}

func TestFedAvgTrainsAndEvaluates(t *testing.T) {
	train, test := flatData(t, 4, 240, 60, 51)
	in := train.X.Dim(1)
	const rounds, K = 12, 3

	srv, err := NewServer(ServerConfig{
		Model:     buildModel(7, in, 4),
		Clients:   K,
		Rounds:    rounds,
		EvalEvery: 6,
		EvalData:  test,
	})
	if err != nil {
		t.Fatal(err)
	}
	shards := dataset.ShardIID(train.Len(), K, rng.New(52))
	clients := make([]*Client, K)
	meters := make([]*transport.Meter, K)
	for k := 0; k < K; k++ {
		meters[k] = &transport.Meter{}
		c, err := NewClient(ClientConfig{
			ID:         k,
			Model:      buildModel(7, in, 4),
			Opt:        &nn.SGD{LR: 0.1},
			Loss:       nn.SoftmaxCrossEntropy{},
			Shard:      train.Subset(shards[k]),
			Batch:      8,
			LocalSteps: 4,
			Rounds:     rounds,
			EvalEvery:  6,
			Seed:       uint64(400 + k),
			Meter:      meters[k],
		})
		if err != nil {
			t.Fatal(err)
		}
		clients[k] = c
	}
	serverStats, clientStats, err := RunLocal(srv, clients)
	if err != nil {
		t.Fatal(err)
	}
	final := serverStats.Evals[len(serverStats.Evals)-1]
	if final.Accuracy < 0.3 {
		t.Fatalf("final accuracy %v (chance 0.25)", final.Accuracy)
	}
	c0 := clientStats[0]
	if c0.Rounds[len(c0.Rounds)-1].Loss >= c0.Rounds[0].Loss {
		t.Fatalf("client loss did not decrease: %v -> %v", c0.Rounds[0].Loss, c0.Rounds[len(c0.Rounds)-1].Loss)
	}
	// 2×|model| per round plus framing and the shard-size trailer.
	modelBytes := int64(len(nn.EncodeParams(buildModel(7, in, 4).Params())))
	perRound := trainingBytes(meters[0]) / int64(rounds)
	if perRound < 2*modelBytes || perRound > 2*modelBytes+4096 {
		t.Fatalf("per-round client traffic %d, want ≈ 2×%d", perRound, modelBytes)
	}
}

// FedAvg with one client and LocalSteps=1 degenerates to centralized
// SGD: the average of one model is that model.
func TestFedAvgSingleClientEqualsCentralized(t *testing.T) {
	train, _ := flatData(t, 3, 64, 8, 53)
	in := train.X.Dim(1)
	const rounds = 6

	ref := buildModel(19, in, 3)
	refOpt := &nn.SGD{LR: 0.05}
	loss := nn.SoftmaxCrossEntropy{}
	sampler := dataset.NewBatchSampler(seqIdx(train.Len()), 8, rng.New(500^0x9e3779b97f4a7c15))
	for r := 0; r < rounds; r++ {
		x, labels := train.Batch(sampler.Next())
		nn.ZeroGrads(ref.Params())
		logits := ref.Forward(x, true)
		_, g := loss.Loss(logits, labels)
		ref.Backward(g)
		refOpt.Step(ref.Params())
	}

	global := buildModel(19, in, 3)
	srv, err := NewServer(ServerConfig{Model: global, Clients: 1, Rounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(ClientConfig{
		ID: 0, Model: buildModel(999, in, 3), Opt: &nn.SGD{LR: 0.05},
		Loss: loss, Shard: train, Batch: 8, LocalSteps: 1, Rounds: rounds, Seed: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunLocal(srv, []*Client{c}); err != nil {
		t.Fatal(err)
	}
	refP, gotP := ref.Params(), global.Params()
	for i := range refP {
		if !tensor.AllClose(refP[i].W, gotP[i].W, 1e-6) {
			t.Fatalf("param %d diverged from centralized training", i)
		}
	}
}

func TestFedAvgWeightedAveraging(t *testing.T) {
	// Two clients with shard sizes 3:1. After one round with LR 0 (no
	// local movement... SGD with LR 0 leaves weights unchanged), both
	// push the broadcast weights back, so the average equals the
	// broadcast — a fixed-point check of the aggregation plumbing.
	train, _ := flatData(t, 2, 40, 8, 54)
	in := train.X.Dim(1)
	global := buildModel(23, in, 2)
	before := nn.EncodeParams(global.Params())
	srv, err := NewServer(ServerConfig{Model: global, Clients: 2, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	shards := dataset.ShardPowerLaw(train.Len(), 2, 1.5, rng.New(55))
	clients := make([]*Client, 2)
	for k := 0; k < 2; k++ {
		c, err := NewClient(ClientConfig{
			ID: k, Model: buildModel(23, in, 2), Opt: &nn.SGD{LR: 0},
			Loss: nn.SoftmaxCrossEntropy{}, Shard: train.Subset(shards[k]),
			Batch: 4, Rounds: 1, Seed: uint64(k),
		})
		if err != nil {
			t.Fatal(err)
		}
		clients[k] = c
	}
	if _, _, err := RunLocal(srv, clients); err != nil {
		t.Fatal(err)
	}
	after := nn.EncodeParams(global.Params())
	if len(before) != len(after) {
		t.Fatal("model size changed")
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("zero-LR round must be an aggregation fixed point")
		}
	}
}

func TestFedAvgConfigValidation(t *testing.T) {
	train, test := flatData(t, 2, 16, 8, 56)
	in := train.X.Dim(1)
	model := buildModel(25, in, 2)
	if _, err := NewServer(ServerConfig{Clients: 1, Rounds: 1}); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := NewServer(ServerConfig{Model: model, Clients: 1, Rounds: 1, EvalEvery: 1}); err == nil {
		t.Fatal("EvalEvery without EvalData accepted")
	}
	if _, err := NewServer(ServerConfig{Model: model, Clients: 1, Rounds: 0, EvalData: test}); err == nil {
		t.Fatal("zero rounds accepted")
	}
	if _, err := NewClient(ClientConfig{Model: model, Opt: &nn.SGD{}, Loss: nn.SoftmaxCrossEntropy{}, Batch: 4, Rounds: 1}); err == nil {
		t.Fatal("nil shard accepted")
	}
	if _, err := NewClient(ClientConfig{Model: model, Opt: &nn.SGD{}, Loss: nn.SoftmaxCrossEntropy{}, Shard: train, Batch: -1, Rounds: 1}); err == nil {
		t.Fatal("negative batch accepted")
	}
}

func TestFedAvgRejectsRoundMismatch(t *testing.T) {
	train, _ := flatData(t, 2, 16, 8, 57)
	in := train.X.Dim(1)
	srv, err := NewServer(ServerConfig{Model: buildModel(27, in, 2), Clients: 1, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(ClientConfig{
		ID: 0, Model: buildModel(27, in, 2), Opt: &nn.SGD{}, Loss: nn.SoftmaxCrossEntropy{},
		Shard: train, Batch: 4, Rounds: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunLocal(srv, []*Client{c}); err == nil {
		t.Fatal("round mismatch accepted")
	}
}

func seqIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
