// Package fedavg implements Federated Averaging (McMahan et al.,
// AISTATS 2017), the approach the paper cites as the de facto standard
// for privacy-preserving deep learning. Each round the server
// broadcasts the model, every client runs several local minibatch steps
// on its own data, ships its updated weights back, and the server
// installs the data-size-weighted average.
//
// Like Large-Scale Synchronous SGD it moves 2×|model| bytes per client
// per round, but the local-steps knob trades communication rounds for
// local computation — the contrast the split framework's activations-
// only traffic is measured against.
package fedavg

import (
	"errors"
	"fmt"
	"sync"

	"medsplit/internal/dataset"
	"medsplit/internal/nn"
	"medsplit/internal/rng"
	"medsplit/internal/tensor"
	"medsplit/internal/transport"
	"medsplit/internal/wire"
)

// Protocol errors.
var (
	// ErrProtocol reports an out-of-sequence or malformed message.
	ErrProtocol = errors.New("fedavg: protocol violation")
	// ErrConfig reports an invalid configuration.
	ErrConfig = errors.New("fedavg: invalid configuration")
)

// ServerConfig configures the aggregation server.
type ServerConfig struct {
	// Model is the global model.
	Model *nn.Sequential
	// Clients is the number of participating clients.
	Clients int
	// Rounds is the number of federated rounds.
	Rounds int
	// EvalEvery, when positive, evaluates the global model every so many
	// rounds (and after the final round), locally and communication-free.
	EvalEvery int
	// EvalData is required when EvalEvery > 0.
	EvalData *dataset.Dataset
	// EvalBatch is the evaluation batch size (default 64).
	EvalBatch int
}

// EvalStat is one evaluation point of the global model.
type EvalStat struct {
	Round    int
	Accuracy float64
}

// ServerStats is what the server measured.
type ServerStats struct {
	Evals []EvalStat
}

// Server aggregates client models.
type Server struct {
	cfg ServerConfig
}

// NewServer validates cfg and builds the server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("%w: nil model", ErrConfig)
	}
	if cfg.Clients <= 0 || cfg.Rounds <= 0 {
		return nil, fmt.Errorf("%w: clients %d rounds %d", ErrConfig, cfg.Clients, cfg.Rounds)
	}
	if cfg.EvalEvery > 0 && cfg.EvalData == nil {
		return nil, fmt.Errorf("%w: EvalEvery without EvalData", ErrConfig)
	}
	if cfg.EvalBatch == 0 {
		cfg.EvalBatch = 64
	}
	return &Server{cfg: cfg}, nil
}

// Serve drives the protocol and returns the evaluation curve.
func (s *Server) Serve(conns []transport.Conn) (*ServerStats, error) {
	if len(conns) != s.cfg.Clients {
		return nil, fmt.Errorf("%w: %d connections for %d clients", ErrConfig, len(conns), s.cfg.Clients)
	}
	if err := s.handshake(conns); err != nil {
		return nil, err
	}
	stats := &ServerStats{}
	params := s.cfg.Model.Params()
	state := nn.CollectState(s.cfg.Model)
	paramW := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		paramW[i] = p.W
	}
	staging := make([][]*tensor.Tensor, len(conns))
	stagingState := make([][]*tensor.Tensor, len(conns))
	stateViews := make([][]*tensor.Tensor, len(conns))
	weights := make([]float64, len(conns))
	var bcast payloadSizer
	var prevBcast []byte
	for r := 0; r < s.cfg.Rounds; r++ {
		// Round r-1's broadcast buffer is free again: every client has
		// decoded it (their round-r-1 pushes arrived before this point),
		// and decoded tensors never alias the payload. Recycling it here
		// — instead of at the receivers, which must never release a
		// shared broadcast payload — keeps the round loop allocation-free.
		wire.Buffers.Put(prevBcast)
		payload := bcast.encodeModel(params, state)
		prevBcast = payload
		for k, conn := range conns {
			if err := conn.Send(&wire.Message{
				Type:     wire.MsgModelPush,
				Platform: uint32(k),
				Round:    uint32(r),
				Payload:  payload,
			}); err != nil {
				return nil, fmt.Errorf("fedavg: broadcasting round %d to client %d: %w", r, k, err)
			}
		}
		for k, conn := range conns {
			m, err := recvExpect(conn, wire.MsgModelPush, r)
			if err != nil {
				return nil, fmt.Errorf("fedavg: model from client %d: %w", k, err)
			}
			ts, st, n, err := decodeModelStateSizeInto(staging[k], stagingState[k], m.Payload, params, state)
			if err != nil {
				return nil, fmt.Errorf("fedavg: client %d: %w", k, err)
			}
			wire.ReleasePayload(&wire.Buffers, m)
			staging[k] = ts
			stagingState[k] = st
			// The staging list carries the shard-size scalar in its last
			// slot; the averaging below sees only the state tensors.
			stateViews[k] = st[:len(state)]
			weights[k] = float64(n)
		}
		if err := AverageInto(paramW, staging, weights); err != nil {
			return nil, fmt.Errorf("fedavg: aggregating weights: %w", err)
		}
		if len(state) > 0 {
			if err := nn.AverageStateInto(state, stateViews, weights); err != nil {
				return nil, fmt.Errorf("fedavg: aggregating state: %w", err)
			}
		}
		if s.evalRound(r) {
			stats.Evals = append(stats.Evals, EvalStat{Round: r, Accuracy: s.evaluate()})
		}
	}
	for k, conn := range conns {
		if _, err := recvExpect(conn, wire.MsgBye, -1); err != nil {
			return nil, fmt.Errorf("fedavg: client %d shutdown: %w", k, err)
		}
	}
	return stats, nil
}

func (s *Server) evalRound(r int) bool {
	if s.cfg.EvalEvery <= 0 {
		return false
	}
	return (r+1)%s.cfg.EvalEvery == 0 || r == s.cfg.Rounds-1
}

func (s *Server) evaluate() float64 {
	data := s.cfg.EvalData
	n := data.Len()
	correct := 0
	for off := 0; off < n; off += s.cfg.EvalBatch {
		end := off + s.cfg.EvalBatch
		if end > n {
			end = n
		}
		idx := make([]int, end-off)
		for i := range idx {
			idx[i] = off + i
		}
		x, labels := data.Batch(idx)
		pred := tensor.ArgmaxRows(s.cfg.Model.Forward(x, false))
		for i, c := range pred {
			if c == labels[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(n)
}

func (s *Server) handshake(conns []transport.Conn) error {
	want := fmt.Sprintf("v=1;algo=fedavg;rounds=%d;eval=%d", s.cfg.Rounds, s.cfg.EvalEvery)
	for k, conn := range conns {
		m, err := recvExpect(conn, wire.MsgHello, -1)
		if err != nil {
			return fmt.Errorf("fedavg: hello from client %d: %w", k, err)
		}
		if int(m.Platform) != k {
			return fmt.Errorf("%w: connection %d identifies as client %d", ErrProtocol, k, m.Platform)
		}
		meta, err := wire.DecodeText(m.Payload)
		if err != nil {
			return fmt.Errorf("fedavg: hello meta from client %d: %w", k, err)
		}
		base, err := wire.CutFrameField(meta)
		if err != nil {
			return fmt.Errorf("fedavg: client %d: %w", k, err)
		}
		if base != want {
			return fmt.Errorf("%w: client %d config %q, server %q", ErrConfig, k, base, want)
		}
		if err := conn.Send(&wire.Message{Type: wire.MsgHelloAck, Platform: uint32(k)}); err != nil {
			return fmt.Errorf("fedavg: acking client %d: %w", k, err)
		}
	}
	return nil
}

// ClientConfig configures one federated client.
type ClientConfig struct {
	// ID is the client index.
	ID int
	// Model is the client's local replica.
	Model *nn.Sequential
	// Opt is the client's local optimizer.
	Opt nn.Optimizer
	// Loss computes the training loss.
	Loss nn.Loss
	// Shard is the client's local data.
	Shard *dataset.Dataset
	// Batch is the local minibatch size.
	Batch int
	// LocalSteps is the number of local minibatch steps per round
	// (FedAvg's E·|D|/B in step form; default 1 = FedSGD).
	LocalSteps int
	// Rounds must match the server.
	Rounds int
	// EvalEvery must match the server.
	EvalEvery int
	// Seed seeds the minibatch sampler.
	Seed uint64
	// Meter, when set, enables traffic snapshots.
	Meter *transport.Meter
}

// RoundStat records the mean local loss of one federated round.
type RoundStat struct {
	Round int
	Loss  float64
}

// ByteStat snapshots cumulative training traffic at a round boundary.
type ByteStat struct {
	Round         int
	TrainingBytes int64
}

// ClientStats is everything a client measured.
type ClientStats struct {
	Rounds []RoundStat
	Bytes  []ByteStat
}

// Client runs the client side of the protocol.
type Client struct {
	cfg     ClientConfig
	sampler *dataset.BatchSampler
}

// NewClient validates cfg and builds a client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Model == nil || cfg.Opt == nil || cfg.Loss == nil {
		return nil, fmt.Errorf("%w: nil model/opt/loss", ErrConfig)
	}
	if cfg.Shard == nil || cfg.Shard.Len() == 0 {
		return nil, fmt.Errorf("%w: client %d has no data", ErrConfig, cfg.ID)
	}
	if cfg.Batch <= 0 || cfg.Rounds <= 0 {
		return nil, fmt.Errorf("%w: batch %d rounds %d", ErrConfig, cfg.Batch, cfg.Rounds)
	}
	if cfg.LocalSteps <= 0 {
		cfg.LocalSteps = 1
	}
	indices := make([]int, cfg.Shard.Len())
	for i := range indices {
		indices[i] = i
	}
	return &Client{
		cfg:     cfg,
		sampler: dataset.NewBatchSampler(indices, cfg.Batch, rng.New(cfg.Seed^0x9e3779b97f4a7c15)),
	}, nil
}

// Run executes the client protocol over conn.
func (c *Client) Run(conn transport.Conn) (*ClientStats, error) {
	meta := fmt.Sprintf("v=1;algo=fedavg;rounds=%d;eval=%d%s", c.cfg.Rounds, c.cfg.EvalEvery, wire.FrameField())
	if err := conn.Send(&wire.Message{
		Type:     wire.MsgHello,
		Platform: uint32(c.cfg.ID),
		Payload:  wire.EncodeText(meta),
	}); err != nil {
		return nil, fmt.Errorf("fedavg: client %d hello: %w", c.cfg.ID, err)
	}
	if _, err := recvExpect(conn, wire.MsgHelloAck, -1); err != nil {
		return nil, fmt.Errorf("fedavg: client %d handshake: %w", c.cfg.ID, err)
	}
	stats := &ClientStats{}
	params := c.cfg.Model.Params()
	state := nn.CollectState(c.cfg.Model)
	var scratch []*tensor.Tensor
	scalar := tensor.New()
	var push payloadSizer
	for r := 0; r < c.cfg.Rounds; r++ {
		m, err := recvExpect(conn, wire.MsgModelPush, r)
		if err != nil {
			return nil, fmt.Errorf("fedavg: client %d round %d: %w", c.cfg.ID, r, err)
		}
		// The broadcast payload is shared across clients over in-process
		// pipes, so it is decoded (through reusable scratch) but never
		// released — only the server, which knows when every client has
		// moved on, may recycle it.
		scratch, err = nn.DecodeModelScratch(scratch, params, state, m.Payload)
		if err != nil {
			return nil, fmt.Errorf("fedavg: client %d installing model: %w", c.cfg.ID, err)
		}
		var lossSum float64
		for step := 0; step < c.cfg.LocalSteps; step++ {
			x, labels := c.cfg.Shard.Batch(c.sampler.Next())
			nn.ZeroGrads(params)
			logits := c.cfg.Model.Forward(x, true)
			loss, g := c.cfg.Loss.Loss(logits, labels)
			c.cfg.Model.Backward(g)
			c.cfg.Opt.Step(params)
			lossSum += loss
		}
		stats.Rounds = append(stats.Rounds, RoundStat{Round: r, Loss: lossSum / float64(c.cfg.LocalSteps)})

		scalar.Set(float32(c.cfg.Shard.Len()))
		payload := push.encodeModelPlus(params, state, scalar)
		if err := conn.Send(&wire.Message{
			Type:     wire.MsgModelPush,
			Platform: uint32(c.cfg.ID),
			Round:    uint32(r),
			Payload:  payload,
		}); err != nil {
			return nil, fmt.Errorf("fedavg: client %d pushing model: %w", c.cfg.ID, err)
		}
		if c.evalRound(r) && c.cfg.Meter != nil {
			stats.Bytes = append(stats.Bytes, ByteStat{Round: r, TrainingBytes: trainingBytes(c.cfg.Meter)})
		}
	}
	if err := conn.Send(&wire.Message{Type: wire.MsgBye, Platform: uint32(c.cfg.ID)}); err != nil {
		return nil, fmt.Errorf("fedavg: client %d bye: %w", c.cfg.ID, err)
	}
	return stats, nil
}

func (c *Client) evalRound(r int) bool {
	if c.cfg.EvalEvery <= 0 {
		return false
	}
	return (r+1)%c.cfg.EvalEvery == 0 || r == c.cfg.Rounds-1
}

// payloadSizer remembers the largest payload a call site has produced
// so the next round's pooled buffer is already big enough and the
// appends never reallocate (same idiom as the core engine's wire path).
type payloadSizer struct{ max int }

// encodeModel packs the model (weights + state) into a pooled buffer.
func (ps *payloadSizer) encodeModel(params []*nn.Param, state []*tensor.Tensor) []byte {
	buf := nn.EncodeModelInto(wire.Buffers.Get(ps.max), params, state)
	if len(buf) > ps.max {
		ps.max = len(buf)
	}
	return buf
}

// encodeModelPlus packs the model followed by one trailer tensor (the
// shard-size scalar) into a pooled buffer.
func (ps *payloadSizer) encodeModelPlus(params []*nn.Param, state []*tensor.Tensor, trailer *tensor.Tensor) []byte {
	buf := nn.EncodeModelInto(wire.Buffers.Get(ps.max), params, state)
	buf = trailer.AppendTo(buf)
	if len(buf) > ps.max {
		ps.max = len(buf)
	}
	return buf
}

// encodeModelStateSize appends normalization state and the shard size
// (as a scalar tensor) to the model payload for weighted aggregation.
func encodeModelStateSize(params []*nn.Param, state []*tensor.Tensor, shardLen int) []byte {
	scalar := tensor.New()
	scalar.Set(float32(shardLen))
	buf := nn.EncodeModelInto(nil, params, state)
	return scalar.AppendTo(buf)
}

// decodeModelStateSize splits a client payload into per-param weight
// tensors, normalization state and the shard size.
func decodeModelStateSize(buf []byte, params []*nn.Param, stateShape []*tensor.Tensor) ([]*tensor.Tensor, []*tensor.Tensor, int, error) {
	ts, st, n, err := decodeModelStateSizeInto(nil, nil, buf, params, stateShape)
	if err != nil {
		return nil, nil, 0, err
	}
	return ts, st[:len(stateShape)], n, nil
}

// decodeModelStateSizeInto is decodeModelStateSize reusing the caller's
// staging tensors (grown on first use), so the server's steady-state
// receive path decodes without allocating. Decoded tensors never alias
// buf; the caller may release the payload immediately after.
func decodeModelStateSizeInto(ts, st []*tensor.Tensor, buf []byte, params []*nn.Param, stateShape []*tensor.Tensor) ([]*tensor.Tensor, []*tensor.Tensor, int, error) {
	if len(ts) != len(params) {
		ts = make([]*tensor.Tensor, len(params))
	}
	if len(st) != len(stateShape)+1 {
		// One extra staging slot holds the shard-size scalar trailer.
		st = make([]*tensor.Tensor, len(stateShape)+1)
	}
	for i, p := range params {
		t, rest, err := tensor.DecodeInto(ts[i], buf)
		if err != nil {
			return ts, st, 0, fmt.Errorf("%w: weight %d: %v", ErrProtocol, i, err)
		}
		ts[i] = t
		if !tensor.SameShape(t, p.W) {
			return ts, st, 0, fmt.Errorf("%w: weight %d shape %v, want %v", ErrProtocol, i, t.Shape(), p.W.Shape())
		}
		buf = rest
	}
	for i, want := range stateShape {
		t, rest, err := tensor.DecodeInto(st[i], buf)
		if err != nil {
			return ts, st, 0, fmt.Errorf("%w: state %d: %v", ErrProtocol, i, err)
		}
		st[i] = t
		if !tensor.SameShape(t, want) {
			return ts, st, 0, fmt.Errorf("%w: state %d shape %v, want %v", ErrProtocol, i, t.Shape(), want.Shape())
		}
		buf = rest
	}
	scalar, rest, err := tensor.DecodeInto(st[len(stateShape)], buf)
	if err != nil || scalar.Size() != 1 || len(rest) != 0 {
		return ts, st, 0, fmt.Errorf("%w: bad shard-size trailer", ErrProtocol)
	}
	st[len(stateShape)] = scalar
	n := int(scalar.At())
	if n <= 0 {
		return ts, st, 0, fmt.Errorf("%w: shard size %d", ErrProtocol, n)
	}
	return ts, st, n, nil
}

func trainingBytes(m *transport.Meter) int64 {
	return m.TxBytesByType(wire.MsgModelPush) + m.RxBytesByType(wire.MsgModelPush)
}

func recvExpect(conn transport.Conn, want wire.MsgType, round int) (*wire.Message, error) {
	m, err := conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("fedavg: receiving %s: %w", want, err)
	}
	if m.Type != want {
		return nil, fmt.Errorf("%w: got %s, want %s", ErrProtocol, m.Type, want)
	}
	if round >= 0 && m.Round != uint32(round) {
		return nil, fmt.Errorf("%w: %s for round %d, want %d", ErrProtocol, m.Type, m.Round, round)
	}
	return m, nil
}

// RunLocal wires a server and clients over in-process pipes and runs
// the full session.
func RunLocal(server *Server, clients []*Client) (*ServerStats, []*ClientStats, error) {
	if server == nil {
		return nil, nil, fmt.Errorf("%w: nil server", ErrConfig)
	}
	if len(clients) != server.cfg.Clients {
		return nil, nil, fmt.Errorf("%w: %d clients for a %d-client server", ErrConfig, len(clients), server.cfg.Clients)
	}
	serverConns := make([]transport.Conn, len(clients))
	clientConns := make([]transport.Conn, len(clients))
	for k, c := range clients {
		s, cc := transport.Pipe()
		serverConns[k] = s
		if c.cfg.Meter != nil {
			cc = transport.Metered(cc, c.cfg.Meter)
		}
		clientConns[k] = cc
	}
	defer func() {
		for k := range clients {
			serverConns[k].Close()
			clientConns[k].Close()
		}
	}()

	var serverStats *ServerStats
	clientStats := make([]*ClientStats, len(clients))
	errs := make([]error, len(clients)+1)
	var wg sync.WaitGroup
	wg.Add(len(clients) + 1)
	go func() {
		defer wg.Done()
		st, err := server.Serve(serverConns)
		if err != nil {
			errs[0] = fmt.Errorf("server: %w", err)
			for _, c := range serverConns {
				c.Close()
			}
			return
		}
		serverStats = st
	}()
	for k, c := range clients {
		k, c := k, c
		go func() {
			defer wg.Done()
			st, err := c.Run(clientConns[k])
			if err != nil {
				errs[k+1] = fmt.Errorf("client %d: %w", k, err)
				clientConns[k].Close()
				return
			}
			clientStats[k] = st
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, nil, err
	}
	return serverStats, clientStats, nil
}
