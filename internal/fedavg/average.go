package fedavg

import (
	"fmt"

	"medsplit/internal/tensor"
)

// AverageInto overwrites dst with the weighted average of the source
// tensor lists: dst[i] = Σ_k (weights[k]/Σweights) · srcs[k][i]. This is
// FedAvg's aggregation rule factored out as a kernel so other
// aggregation sites — the split engine's L1 weight sync, SplitFed's
// periodic averaging — apply the exact same arithmetic (same operation
// order, same float32 rounding) as the FedAvg baseline.
//
// Every source list must have one tensor per dst entry with a matching
// shape; weights must be non-negative with a positive sum.
func AverageInto(dst []*tensor.Tensor, srcs [][]*tensor.Tensor, weights []float64) error {
	if len(srcs) == 0 || len(weights) != len(srcs) {
		return fmt.Errorf("fedavg: AverageInto %d sources, %d weights", len(srcs), len(weights))
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			return fmt.Errorf("fedavg: negative aggregation weight %v", w)
		}
		total += w
	}
	if total == 0 {
		return fmt.Errorf("fedavg: aggregation weights sum to zero")
	}
	for s, src := range srcs {
		if len(src) != len(dst) {
			return fmt.Errorf("fedavg: source %d has %d tensors, want %d", s, len(src), len(dst))
		}
	}
	for i, d := range dst {
		acc := d.Data()
		for j := range acc {
			acc[j] = 0
		}
		for s, src := range srcs {
			if !tensor.SameShape(d, src[i]) {
				return fmt.Errorf("fedavg: tensor %d shape mismatch at source %d: %v, want %v",
					i, s, src[i].Shape(), d.Shape())
			}
			scale := float32(weights[s] / total)
			sd := src[i].Data()
			for j := range acc {
				acc[j] += scale * sd[j]
			}
		}
	}
	return nil
}
