package fedavg

import (
	"errors"
	"fmt"
	"testing"

	"medsplit/internal/nn"
	"medsplit/internal/tensor"
	"medsplit/internal/transport"
	"medsplit/internal/wire"
)

// helloServer starts a one-client server and returns its error channel
// plus the client end of the pipe.
func helloServer(t *testing.T, in int) (transport.Conn, chan error) {
	t.Helper()
	srv, err := NewServer(ServerConfig{Model: buildModel(61, in, 2), Clients: 1, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	sConn, cConn := transport.Pipe()
	t.Cleanup(func() { cConn.Close() })
	errCh := make(chan error, 1)
	go func() {
		_, serr := srv.Serve([]transport.Conn{sConn})
		errCh <- serr
		sConn.Close()
	}()
	return cConn, errCh
}

// Regression test for frame-version negotiation: a client built before
// the versioned hello (no ";frame=" field) must be rejected fail-fast
// with a typed *wire.FrameSkewError, not mis-reported as a config
// mismatch or left to desynchronize mid-training.
func TestFedAvgRejectsUnversionedHello(t *testing.T) {
	train, _ := flatData(t, 2, 16, 8, 60)
	cConn, errCh := helloServer(t, train.X.Dim(1))
	legacy := "v=1;algo=fedavg;rounds=1;eval=0" // what a pre-negotiation build sends
	if err := cConn.Send(&wire.Message{Type: wire.MsgHello, Payload: wire.EncodeText(legacy)}); err != nil {
		t.Fatal(err)
	}
	err := <-errCh
	var skew *wire.FrameSkewError
	if !errors.As(err, &skew) {
		t.Fatalf("err = %v, want *wire.FrameSkewError", err)
	}
	if skew.Got >= 0 || skew.Want != wire.FrameVersion {
		t.Fatalf("skew = got %d want %d; expected undeclared (got < 0) against %d", skew.Got, skew.Want, wire.FrameVersion)
	}
	if !errors.Is(err, wire.ErrBadVersion) {
		t.Fatalf("err = %v, want errors.Is(..., wire.ErrBadVersion)", err)
	}
}

// A peer declaring a different frame version is rejected with the
// declared version in the error.
func TestFedAvgRejectsFrameSkew(t *testing.T) {
	train, _ := flatData(t, 2, 16, 8, 60)
	cConn, errCh := helloServer(t, train.X.Dim(1))
	stale := fmt.Sprintf("v=1;algo=fedavg;rounds=1;eval=0;frame=%d", wire.FrameVersion-1)
	if err := cConn.Send(&wire.Message{Type: wire.MsgHello, Payload: wire.EncodeText(stale)}); err != nil {
		t.Fatal(err)
	}
	err := <-errCh
	var skew *wire.FrameSkewError
	if !errors.As(err, &skew) {
		t.Fatalf("err = %v, want *wire.FrameSkewError", err)
	}
	if skew.Got != wire.FrameVersion-1 || skew.Want != wire.FrameVersion {
		t.Fatalf("skew = got %d want %d", skew.Got, skew.Want)
	}
}

func TestAverageInto(t *testing.T) {
	mk := func(vals ...float32) []*tensor.Tensor {
		ts := make([]*tensor.Tensor, len(vals))
		for i, v := range vals {
			ts[i] = tensor.New(2)
			ts[i].Data()[0] = v
			ts[i].Data()[1] = 2 * v
		}
		return ts
	}
	dst := mk(0, 0)
	srcs := [][]*tensor.Tensor{mk(1, 10), mk(3, 30)}
	if err := AverageInto(dst, srcs, []float64{3, 1}); err != nil {
		t.Fatal(err)
	}
	// (3·1 + 1·3)/4 = 1.5 and (3·10 + 1·30)/4 = 15.
	if got := dst[0].Data()[0]; got != 1.5 {
		t.Fatalf("dst[0] = %v, want 1.5", got)
	}
	if got := dst[1].Data()[1]; got != 30 {
		t.Fatalf("dst[1][1] = %v, want 30", got)
	}

	if err := AverageInto(dst, srcs, []float64{1}); err == nil {
		t.Fatal("weight count mismatch accepted")
	}
	if err := AverageInto(dst, srcs, []float64{-1, 2}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if err := AverageInto(dst, srcs, []float64{0, 0}); err == nil {
		t.Fatal("zero total weight accepted")
	}
	if err := AverageInto(dst, [][]*tensor.Tensor{mk(1)}, []float64{1}); err == nil {
		t.Fatal("source length mismatch accepted")
	}
	short := mk(1, 2)
	short[1] = tensor.New(3)
	if err := AverageInto(dst, [][]*tensor.Tensor{short}, []float64{1}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

// The steady-state round path — pooled model encode, staged decode,
// payload release — must not allocate once buffers and staging are
// warm. This is the parity assertion for the rewiring of fedavg onto
// wire.BufferPool: regressions that reintroduce per-round allocations
// fail here rather than only showing up in benchmark numbers.
func TestFedAvgSteadyStateExchangeAllocFree(t *testing.T) {
	model := buildModel(31, 24, 2)
	params := model.Params()
	state := nn.CollectState(model)
	scalar := tensor.New()
	scalar.Set(16)
	var push payloadSizer
	var ts, st []*tensor.Tensor
	cycle := func() {
		payload := push.encodeModelPlus(params, state, scalar)
		var err error
		ts, st, _, err = decodeModelStateSizeInto(ts, st, payload, params, state)
		if err != nil {
			t.Fatal(err)
		}
		wire.Buffers.Put(payload)
	}
	cycle() // warm the pool and the staging tensors
	if n := testing.AllocsPerRun(50, cycle); n != 0 {
		t.Fatalf("steady-state exchange allocates %v objects per round, want 0", n)
	}
}

// BenchmarkFedAvgModelExchange measures one client push worth of
// encode+decode through the pooled wire path. Allocs/op is the headline
// number: steady state must report 0.
func BenchmarkFedAvgModelExchange(b *testing.B) {
	model := buildModel(31, 3072, 10)
	params := model.Params()
	state := nn.CollectState(model)
	scalar := tensor.New()
	scalar.Set(64)
	var push payloadSizer
	var ts, st []*tensor.Tensor
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		payload := push.encodeModelPlus(params, state, scalar)
		var err error
		ts, st, _, err = decodeModelStateSizeInto(ts, st, payload, params, state)
		if err != nil {
			b.Fatal(err)
		}
		wire.Buffers.Put(payload)
	}
}
