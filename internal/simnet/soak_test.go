package simnet_test

import (
	"fmt"
	"testing"

	"medsplit/internal/experiment"
	"medsplit/internal/geonet"
	"medsplit/internal/transport/testutil"
)

// The scale-out soak: a 100-clinic split-learning session runs end to
// end over the simulated WAN — handshake, several training rounds, a
// final evaluation — with one server goroutine fanning into 100
// concurrent platform sessions. Under `go test -race` (the CI race job
// includes this package) it shakes data races out of the fan-in paths;
// the leak check asserts every session goroutine is joined on exit.
// Skipped with -short to keep quick iteration loops quick.
func TestSoak100PlatformSession(t *testing.T) {
	if testing.Short() {
		t.Skip("100-platform soak skipped in -short mode")
	}
	const clinics = 100
	topo, regions := geonet.SyntheticClinics(clinics, 23)

	arms := []struct {
		name   string
		mutate func(*experiment.Config)
	}{
		{"sequential", func(c *experiment.Config) {}},
		// The pipelined arm runs with a deliberately tight I/O budget:
		// only 32 of the 100 connections get dedicated reader/writer
		// goroutines, so the mixed async/synchronous fan-in path is
		// raced at scale too.
		{"pipelined-depth1-budget64", func(c *experiment.Config) {
			c.Pipelined = true
			c.PipelineDepth = 1
			c.PipelineIOBudget = 64
		}},
	}
	for _, arm := range arms {
		t.Run(arm.name, func(t *testing.T) {
			testutil.VerifyNoLeaks(t)
			cfg := experiment.Config{
				Arch:         experiment.ArchMLP,
				Classes:      4,
				TrainSamples: 2 * clinics,
				TestSamples:  40,
				Platforms:    clinics,
				Rounds:       3,
				TotalBatch:   2 * clinics,
				EvalEvery:    3,
				Seed:         19,
				Topology:     topo,
				Regions:      regions,
				SimWAN:       true,
				SimJitter:    0.1,
			}
			arm.mutate(&cfg)
			res, err := experiment.RunSplit(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.SimElapsed <= 0 {
				t.Fatal("soak session reported no virtual elapsed time")
			}
			if res.TrainingBytes <= 0 {
				t.Fatal("soak session reported no training traffic")
			}
			t.Logf("%d clinics, %d rounds: %d training bytes, %v simulated elapsed, digest %#x",
				clinics, cfg.Rounds, res.TrainingBytes, res.SimElapsed, res.WeightDigest)
		})
	}
}

// A 100-platform sequential session is deterministic end to end: the
// soak's trajectory (weights and virtual timeline) reproduces exactly.
func TestSoak100PlatformDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("100-platform determinism check skipped in -short mode")
	}
	const clinics = 100
	topo, regions := geonet.SyntheticClinics(clinics, 23)
	run := func() *experiment.Result {
		cfg := experiment.Config{
			Arch:         experiment.ArchMLP,
			Classes:      4,
			TrainSamples: 2 * clinics,
			TestSamples:  40,
			Platforms:    clinics,
			Rounds:       2,
			TotalBatch:   2 * clinics,
			EvalEvery:    2,
			Seed:         19,
			Topology:     topo,
			Regions:      regions,
			SimWAN:       true,
			SimJitter:    0.1,
		}
		res, err := experiment.RunSplit(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.WeightDigest != b.WeightDigest {
		t.Fatalf("weight digests diverged: %#x vs %#x", a.WeightDigest, b.WeightDigest)
	}
	if a.SimElapsed != b.SimElapsed {
		t.Fatalf("virtual timelines diverged: %v vs %v", a.SimElapsed, b.SimElapsed)
	}
	if fmt.Sprintf("%v", a.Curve.Points) != fmt.Sprintf("%v", b.Curve.Points) {
		t.Fatal("evaluation curves diverged between identical runs")
	}
}
