package simnet

import (
	"fmt"
	"sort"

	"medsplit/internal/geonet"
	"medsplit/internal/transport"
)

// Pair is the two endpoints of one platform's link.
type Pair struct {
	Server   transport.Conn
	Platform transport.Conn
}

// FromTopology builds a network with one link per platform, taking
// each platform's WAN parameters from the geonet topology via its
// region — the bridge that turns the paper's analytic site-to-site
// parameters into an executable transport. pairs[k] carries platform
// k's endpoints.
func FromTopology(topo *geonet.Topology, regions []geonet.Region, opts Options) (*Network, []Pair, error) {
	if topo == nil {
		return nil, nil, fmt.Errorf("simnet: nil topology")
	}
	n := New(opts)
	pairs := make([]Pair, len(regions))
	for k, r := range regions {
		l, err := topo.Link(r)
		if err != nil {
			return nil, nil, err
		}
		s, p := n.AddLink(k, l)
		pairs[k] = Pair{Server: s, Platform: p}
	}
	return n, pairs, nil
}

// Ideal builds a network of n zero-latency, infinite-bandwidth links —
// the configuration under which a simnet session must be bit-identical
// to one over transport.Pipe (the differential tests enforce it).
func Ideal(n int, opts Options) (*Network, []Pair) {
	net := New(opts)
	pairs := make([]Pair, n)
	for k := 0; k < n; k++ {
		s, p := net.AddLink(k, geonet.Link{})
		pairs[k] = Pair{Server: s, Platform: p}
	}
	return net, pairs
}

// Regions returns a topology's platform regions in deterministic
// (sorted) order — the canonical platform-index assignment used by the
// examples and benchmarks when a topology arrives as a map.
func Regions(topo *geonet.Topology) []geonet.Region {
	out := make([]geonet.Region, 0, len(topo.Links))
	for r := range topo.Links {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
