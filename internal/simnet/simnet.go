// Package simnet is a deterministic simulated-WAN transport: it carries
// wire.Messages between the platforms and the server exactly like the
// pipe and TCP transports do (it implements transport.Conn), while
// modeling each site's WAN link — one-way propagation latency, usable
// bandwidth, and seeded jitter — on a virtual clock. Runs finish as
// fast as the machine allows no matter how slow the simulated links
// are: nothing ever sleeps, the clock is pure accounting.
//
// # Virtual time
//
// Every party (the server, each platform) owns a causal clock (node).
// A message departs at the sender's current virtual time, waits for the
// link to finish serializing earlier messages (per-direction busy
// schedule), crosses the link in serialization + latency + jitter, and
// stamps the receiver's clock forward to its delivery time on Recv.
// Local compute is instantaneous by default, so Network.Elapsed then
// measures the pure network schedule of the protocol — the quantity the
// geonet estimators approximate analytically, now produced by running
// the real engine. Options.Compute switches on a per-party compute-time
// model: the server's clock is charged Compute.Server when it receives
// a platform's cut activations (the back half's forward+backward+step),
// and a platform's clock is charged its Compute.Platform entry when it
// ships a loss gradient (the front half's loss-gradient work between
// receiving logits and replying) — the same two charge points
// geonet.SplitRoundShape's ServerCompute and PlatformCompute model, so
// measured and analytic round times stay comparable. Heterogeneous
// platforms (stragglers with slow GPUs, not just slow links) are one
// slice entry away, and the charges live on the virtual clocks, so
// Elapsed folds compute and communication into a single wall-clock.
//
// Determinism: a link's per-direction message sequence is fixed by the
// protocol, and its jitter stream is seeded from Options.Seed, so every
// per-message transfer time is reproducible. In the lockstep round
// modes (sequential, concat) each node is driven by a single protocol
// goroutine, which makes the full virtual timeline — and Elapsed —
// bit-for-bit reproducible across runs. In pipelined mode the async
// transport wrappers stamp sends from worker goroutines, so Elapsed may
// vary within the prefetch window; trained weights are transport-timing
// independent in every mode (the scenario matrix tests enforce it).
//
// # Faults
//
// Fault injection is scripted, not random: a Fault names the platform
// link, the round, and optionally the message type and direction that
// trigger it, so a "drop platform 3 while it uploads round 5's loss
// gradients" scenario is one literal. A triggered fault severs the
// link: in-flight messages are lost, the sender sees a connection
// error (or a fake success with Swallow — the TCP-buffer failure mode),
// and the peer reads io.EOF, which is exactly what core's dropout
// recovery classifies as recoverable. Redial builds the replacement
// connection for the rejoin handshake; FailDials makes the link stay
// down for a deterministic number of attempts first.
//
// The serving-phase kinds perturb without severing: FaultDrop loses one
// message on a healthy link, FaultDelaySpike delivers one message late
// in virtual time, and FaultStall freezes a direction for a stretch of
// real time — the three shapes the inference tier's timeout, retry and
// hedging machinery must absorb (see experiment.RunServeChaos).
package simnet

import (
	"fmt"
	"io"
	"sync"
	"time"

	"medsplit/internal/geonet"
	"medsplit/internal/rng"
	"medsplit/internal/transport"
	"medsplit/internal/wire"
)

// Dir names a transfer direction on a link.
type Dir uint8

// Link directions.
const (
	// DirUp is platform → server.
	DirUp Dir = iota + 1
	// DirDown is server → platform.
	DirDown
)

// String names the direction.
func (d Dir) String() string {
	switch d {
	case DirUp:
		return "up"
	case DirDown:
		return "down"
	default:
		return fmt.Sprintf("dir(%d)", uint8(d))
	}
}

// FaultKind selects what a triggered fault takes down.
type FaultKind uint8

// Fault kinds. The zero value severs just the triggering link, so
// existing fault scripts keep their meaning.
const (
	// FaultSever kills the triggering platform's link segment: the
	// classic platform-dropout scenario.
	FaultSever FaultKind = iota
	// FaultKillServer models the server process dying: the triggering
	// link severs, and then every other platform's link severs too —
	// all conversations with the dead process end at once. FailDials
	// arms on every link, so no platform can redial until the budget
	// is spent (the window in which a follower promotes).
	FaultKillServer
	// FaultDrop loses the triggering message while the link stays
	// healthy — the serving-phase failure where one request (or one
	// response) vanishes and the client's per-attempt timeout is the
	// only thing that notices. The Send reports success, like Swallow,
	// but nothing severs and later traffic flows normally.
	FaultDrop
	// FaultDelaySpike delivers the triggering message Delay later in
	// virtual time — a transient WAN latency spike. In-order delivery
	// holds, so messages queued behind it on the same direction are
	// pushed back too.
	FaultDelaySpike
	// FaultStall freezes the triggering direction for Hold of real
	// time — a stalled server (GC pause, CPU starvation) rather than a
	// slow link. The message and everything behind it stay queued and
	// undeliverable until the hold expires, which is what drives a
	// client's real-time timeout and hedging machinery in chaos runs;
	// virtual time is untouched (a process freeze is not network
	// time).
	FaultStall
)

// String names the kind.
func (k FaultKind) String() string {
	switch k {
	case FaultSever:
		return "sever"
	case FaultKillServer:
		return "kill-server"
	case FaultDrop:
		return "drop"
	case FaultDelaySpike:
		return "delay-spike"
	case FaultStall:
		return "stall"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Fault scripts one deterministic failure. The trigger fires when a
// message matching (Round, Type, Dir) is handed to Send; a zero Type or
// Dir matches any. Partitions are just several Faults sharing a round.
type Fault struct {
	// Platform names the link (the id passed to AddLink).
	Platform int
	// Round triggers on messages of exactly this round.
	Round int
	// Type, when nonzero, narrows the trigger to one message type.
	Type wire.MsgType
	// Dir, when nonzero, narrows the trigger to one direction.
	Dir Dir
	// Kind selects the blast radius: FaultSever (default) takes down
	// this one link, FaultKillServer takes down every link, and the
	// serving-phase kinds (FaultDrop, FaultDelaySpike, FaultStall)
	// perturb traffic without severing anything.
	Kind FaultKind
	// Swallow reports the triggering Send as successful while dropping
	// the message — the failure mode where a payload dies buffered in a
	// kernel socket after the sender moved on. Only meaningful for the
	// severing kinds; FaultDrop always reports success.
	Swallow bool
	// Delay is FaultDelaySpike's extra virtual delivery delay.
	Delay time.Duration
	// Hold is FaultStall's real-time freeze of the triggering
	// direction.
	Hold time.Duration
	// FailDials makes the first FailDials Redial attempts after the
	// drop fail, a deterministic stand-in for a link that stays down
	// for a while before the platform can rejoin. With FaultKillServer
	// the budget arms on every link, not just the triggering one.
	FailDials int
}

// Compute models local compute time on the virtual clocks. The zero
// value keeps the legacy behavior: compute is instantaneous and Elapsed
// is the pure network schedule.
//
// Charges mirror the analytic estimators' placement
// (geonet.SplitRoundShape): Server is applied when the server endpoint
// receives a wire.MsgActivations — the back half's forward + backward +
// step for that platform's minibatch — and Platform[id] is applied when
// platform id hands a wire.MsgLossGrad to Send, i.e. between receiving
// logits and shipping the loss gradient. Eval and L1-sync traffic use
// other message types and is never charged, matching the estimators'
// exclusion of that traffic.
type Compute struct {
	// Server is the back-half compute charged per received activations
	// message.
	Server time.Duration
	// Platform is the per-platform front-half loss-gradient compute,
	// indexed by the id passed to AddLink. Platforms beyond the slice
	// (or a nil slice) compute instantaneously.
	Platform []time.Duration
}

// platform returns platform id's compute charge.
func (c Compute) platform(id int) time.Duration {
	if id < 0 || id >= len(c.Platform) {
		return 0
	}
	return c.Platform[id]
}

// Options configures a Network.
type Options struct {
	// Seed derives every link's jitter stream; equal seeds give
	// bit-identical transfer schedules.
	Seed uint64
	// Jitter adds up to this fraction of a message's base transfer time
	// (serialization + latency) as seeded extra delay. Must be in
	// [0, 1). Zero disables jitter.
	Jitter float64
	// QueueCap bounds each direction's in-flight messages; a sender
	// blocks (backpressure) when the peer has not drained. Defaults to
	// 64 — far above anything the request/response protocol queues, but
	// a hard stop against unbounded buffering if a future protocol
	// misbehaves.
	QueueCap int
	// Faults is the fault script (see Fault).
	Faults []Fault
	// Compute charges local compute time onto the virtual clocks (see
	// Compute). Zero value: compute is instantaneous.
	Compute Compute
}

// Network is a simulated WAN: one server-side clock plus one link (and
// clock) per platform. Safe for concurrent use by the session's
// goroutines.
type Network struct {
	opts Options

	server *node

	mu    sync.Mutex
	links map[int]*link
}

// New builds an empty network. Add links with AddLink or use
// FromTopology.
func New(opts Options) *Network {
	if opts.Jitter < 0 || opts.Jitter >= 1 {
		panic(fmt.Sprintf("simnet: jitter %v outside [0,1)", opts.Jitter))
	}
	if opts.Compute.Server < 0 {
		panic(fmt.Sprintf("simnet: negative server compute %v", opts.Compute.Server))
	}
	for id, d := range opts.Compute.Platform {
		if d < 0 {
			panic(fmt.Sprintf("simnet: negative compute %v for platform %d", d, id))
		}
	}
	if opts.QueueCap <= 0 {
		opts.QueueCap = 64
	}
	return &Network{
		opts:   opts,
		server: &node{},
		links:  make(map[int]*link),
	}
}

// node is one party's causal virtual clock: it only moves forward, to
// the latest delivery time the party has observed.
type node struct {
	mu  sync.Mutex
	now time.Duration
}

func (nd *node) clock() time.Duration {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.now
}

func (nd *node) observe(t time.Duration) {
	nd.mu.Lock()
	if t > nd.now {
		nd.now = t
	}
	nd.mu.Unlock()
}

// advance charges local compute: unlike observe it always moves the
// clock, because compute time is spent regardless of what was already
// observed.
func (nd *node) advance(d time.Duration) {
	if d <= 0 {
		return
	}
	nd.mu.Lock()
	nd.now += d
	nd.mu.Unlock()
}

// link is one platform's WAN path: immutable parameters plus the
// current segment (a redial replaces the segment, never the link).
type link struct {
	net      *Network
	platform int
	params   geonet.Link
	node     *node // the platform's clock

	mu        sync.Mutex
	gen       int
	cur       *segment
	faults    []Fault // pending (unconsumed) faults for this link
	failDials int     // Redial attempts that must still fail
}

// AddLink creates the platform's link with the given WAN parameters and
// returns its two connection endpoints. Unlike geonet.Link.TransferTime
// (which panics on non-positive bandwidth), simnet treats Mbps <= 0 as
// an infinitely fast link and LatencyMs <= 0 as zero latency, so the
// ideal zero-latency configuration used by the differential tests is
// expressible.
func (n *Network) AddLink(platform int, params geonet.Link) (serverEnd, platformEnd transport.Conn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.links[platform]; dup {
		panic(fmt.Sprintf("simnet: duplicate link for platform %d", platform))
	}
	l := &link{
		net:      n,
		platform: platform,
		params:   params,
		node:     &node{},
	}
	for _, f := range n.opts.Faults {
		if f.Platform == platform {
			l.faults = append(l.faults, f)
		}
	}
	l.cur = l.newSegment(0)
	n.links[platform] = l
	return l.cur.server, l.cur.platform
}

// Redial replaces a platform's (typically severed) link segment with a
// fresh one on the same parameters and clocks, returning the new
// endpoint pair — the simulated equivalent of a platform re-dialing
// the server for the rejoin handshake. The caller hands serverEnd to
// whatever accepts rejoins (core.RejoinBroker.Offer) and uses
// platformEnd as the PlatformConfig.Redial result. While a triggered
// fault's FailDials budget lasts, Redial deterministically fails.
func (n *Network) Redial(platform int) (serverEnd, platformEnd transport.Conn, err error) {
	n.mu.Lock()
	l := n.links[platform]
	n.mu.Unlock()
	if l == nil {
		return nil, nil, fmt.Errorf("simnet: no link for platform %d", platform)
	}
	l.mu.Lock()
	if l.failDials > 0 {
		remaining := l.failDials - 1
		l.failDials = remaining
		l.mu.Unlock()
		return nil, nil, fmt.Errorf("simnet: link %d still down (%d more dials will fail)", platform, remaining)
	}
	old := l.cur
	l.gen++
	l.cur = l.newSegment(l.gen)
	server, platformConn := l.cur.server, l.cur.platform
	// Drop the link lock before severing: a Send in flight on the old
	// segment holds that segment's lock while consulting the fault
	// script under the link lock, so severing under l.mu would invert
	// the seg.mu → link.mu order and deadlock.
	l.mu.Unlock()
	old.sever() // an abandoned healthy segment must not keep delivering
	return server, platformConn, nil
}

// killServer implements FaultKillServer: the server process died, so
// every platform's current segment severs and every link arms the
// fault's FailDials budget. The triggering link was already severed
// (and its budget armed by takeFault) by the Send that fired the
// fault; it is skipped here. Called with no locks held — severing
// takes each segment's own lock.
func (n *Network) killServer(trigger *link, failDials int) {
	n.mu.Lock()
	links := make([]*link, 0, len(n.links))
	for _, l := range n.links {
		if l != trigger {
			links = append(links, l)
		}
	}
	n.mu.Unlock()
	for _, l := range links {
		l.mu.Lock()
		l.failDials = failDials
		cur := l.cur
		l.mu.Unlock()
		cur.sever()
	}
}

// Elapsed returns the latest virtual time any party has reached — the
// simulated wall-clock of the session so far.
func (n *Network) Elapsed() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	max := n.server.clock()
	for _, l := range n.links {
		if t := l.node.clock(); t > max {
			max = t
		}
	}
	return max
}

// PlatformClock returns one platform's virtual time (its node clock).
func (n *Network) PlatformClock(platform int) time.Duration {
	n.mu.Lock()
	l := n.links[platform]
	n.mu.Unlock()
	if l == nil {
		return 0
	}
	return l.node.clock()
}

// takeFault consumes and returns the first pending fault matching the
// message, or nil.
func (l *link) takeFault(m *wire.Message, dir Dir) *Fault {
	// Caller holds l.mu (segment operations lock the link, see below).
	for i, f := range l.faults {
		if int(m.Round) != f.Round {
			continue
		}
		if f.Type != 0 && m.Type != f.Type {
			continue
		}
		if f.Dir != 0 && dir != f.Dir {
			continue
		}
		l.faults = append(l.faults[:i], l.faults[i+1:]...)
		if f.Kind == FaultSever || f.Kind == FaultKillServer {
			l.failDials = f.FailDials
		}
		matched := f
		return &matched
	}
	return nil
}

// segment is one live incarnation of a link: two directed queues plus
// the shared condition variable both endpoints wait on. A severed or
// replaced segment stays severed forever; a Redial builds a new one.
type segment struct {
	link *link
	gen  int

	mu     sync.Mutex
	cond   *sync.Cond
	broken bool
	up     queueState // platform → server
	down   queueState // server → platform

	server   *endpoint
	platform *endpoint
}

// queueState is one direction's in-flight messages and transfer
// schedule.
type queueState struct {
	msgs         []timedMsg
	senderClosed bool
	stalled      bool          // FaultStall: nothing delivers until the hold expires
	busyUntil    time.Duration // link serializer free at
	lastDeliver  time.Duration // in-order delivery clamp
	jitter       *rng.RNG
}

type timedMsg struct {
	m  *wire.Message
	at time.Duration
}

// newSegment builds a fresh segment; jitter streams are derived from
// the network seed, the platform id, the direction and the segment
// generation, so every incarnation's schedule is reproducible.
func (l *link) newSegment(gen int) *segment {
	s := &segment{link: l, gen: gen}
	s.cond = sync.NewCond(&s.mu)
	s.up.jitter = deriveRNG(l.net.opts.Seed, l.platform, DirUp, gen)
	s.down.jitter = deriveRNG(l.net.opts.Seed, l.platform, DirDown, gen)
	s.server = &endpoint{seg: s, isServer: true, node: l.net.server}
	s.platform = &endpoint{seg: s, isServer: false, node: l.node}
	return s
}

// deriveRNG decorrelates a per-direction jitter stream from the network
// seed using SplitMix64's own mixing (one Split per component).
func deriveRNG(seed uint64, platform int, dir Dir, gen int) *rng.RNG {
	r := rng.New(seed ^ 0x517e57a7e5eed5)
	r = rng.New(r.Uint64() + uint64(platform)*0x9e3779b97f4a7c15)
	r = rng.New(r.Uint64() + uint64(dir))
	return rng.New(r.Uint64() + uint64(gen)*0xbf58476d1ce4e5b9)
}

// sever kills the segment: queued messages are lost, blocked callers
// wake with errors.
func (s *segment) sever() {
	s.mu.Lock()
	s.broken = true
	s.up.msgs = nil
	s.down.msgs = nil
	s.cond.Broadcast()
	s.mu.Unlock()
}

// transfer computes the delivery time for size wire bytes handed to the
// queue at virtual time now, advancing the direction's schedule.
// Caller holds s.mu.
func (s *segment) transfer(q *queueState, now time.Duration, size int) time.Duration {
	p := s.link.params
	var serialize time.Duration
	if p.Mbps > 0 {
		serialize = time.Duration(float64(size) * 8 / (p.Mbps * 1e6) * float64(time.Second))
	}
	var latency time.Duration
	if p.LatencyMs > 0 {
		latency = time.Duration(p.LatencyMs * float64(time.Millisecond))
	}
	depart := now
	if q.busyUntil > depart {
		depart = q.busyUntil
	}
	q.busyUntil = depart + serialize
	at := depart + serialize + latency
	if j := s.link.net.opts.Jitter; j > 0 {
		at += time.Duration(float64(serialize+latency) * j * q.jitter.Float64())
	}
	if at < q.lastDeliver { // in-order delivery (stream semantics)
		at = q.lastDeliver
	}
	q.lastDeliver = at
	return at
}

// endpoint is one side of a segment. It satisfies transport.Conn.
type endpoint struct {
	seg      *segment
	isServer bool
	node     *node

	closed bool // guarded by seg.mu
}

var _ transport.Conn = (*endpoint)(nil)

// out returns the queue this endpoint sends into and its direction.
func (e *endpoint) out() (*queueState, Dir) {
	if e.isServer {
		return &e.seg.down, DirDown
	}
	return &e.seg.up, DirUp
}

// in returns the queue this endpoint receives from.
func (e *endpoint) in() *queueState {
	if e.isServer {
		return &e.seg.up
	}
	return &e.seg.down
}

// Send queues m for delivery after the link's simulated transfer. It
// blocks only for backpressure (QueueCap) — never for virtual time.
// The message is delivered by reference, so the transport.Conn payload
// ownership rules apply unchanged; messages lost to a severed link are
// dropped on the floor (never recycled into wire.Buffers).
func (e *endpoint) Send(m *wire.Message) error {
	s := e.seg
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.closed {
		return transport.ErrClosed
	}
	q, dir := e.out()
	if s.broken || q.senderClosed || e.peer().closed {
		return io.ErrClosedPipe
	}
	// Fault script: consult under the link lock so concurrent senders on
	// the two directions race deterministically never — each fault names
	// one direction or matches the first arrival (single consumer).
	s.link.mu.Lock()
	f := s.link.takeFault(m, dir)
	s.link.mu.Unlock()
	if f != nil && f.Kind == FaultDrop {
		return nil // lost in flight; the link stays healthy
	}
	if f != nil && (f.Kind == FaultSever || f.Kind == FaultKillServer) {
		s.broken = true
		s.up.msgs = nil
		s.down.msgs = nil
		s.cond.Broadcast()
		if f.Kind == FaultKillServer {
			// Take down every other link too — but only after releasing
			// this segment's lock: severing walks other segments' locks,
			// and holding ours while doing so could deadlock against a
			// concurrent fault firing the other way (same reasoning as
			// Redial dropping l.mu before old.sever()).
			s.mu.Unlock()
			s.link.net.killServer(s.link, f.FailDials)
			s.mu.Lock() // restore for the deferred unlock
		}
		if f.Swallow {
			return nil
		}
		return fmt.Errorf("simnet: link %d severed on %s r%d %s: %w",
			s.link.platform, m.Type, m.Round, dir, io.ErrClosedPipe)
	}
	for len(q.msgs) >= s.link.net.opts.QueueCap {
		s.cond.Wait()
		if e.closed {
			return transport.ErrClosed
		}
		if s.broken || e.peer().closed {
			return io.ErrClosedPipe
		}
	}
	// Front-half compute: the loss gradient departs only after the
	// platform finished computing it (geonet's PlatformCompute charge
	// point, between receiving logits and shipping the loss gradient).
	if !e.isServer && m.Type == wire.MsgLossGrad {
		e.node.advance(s.link.net.opts.Compute.platform(s.link.platform))
	}
	at := s.transfer(q, e.node.clock(), m.WireSize())
	if f != nil && f.Kind == FaultDelaySpike && f.Delay > 0 {
		at += f.Delay
		q.lastDeliver = at // in-order: the spike pushes later traffic back too
	}
	q.msgs = append(q.msgs, timedMsg{m: m, at: at})
	if f != nil && f.Kind == FaultStall && f.Hold > 0 {
		q.stalled = true
		// The hold is real time (a frozen process, not a slow link), so
		// it clears from a timer: take the segment lock before waking
		// waiters, or a Recv that checked stalled just before the flag
		// flipped would miss the wakeup and sleep forever.
		time.AfterFunc(f.Hold, func() {
			s.mu.Lock()
			q.stalled = false
			s.cond.Broadcast()
			s.mu.Unlock()
		})
	}
	s.cond.Broadcast()
	return nil
}

// Recv returns the next delivered message, advancing this party's
// virtual clock to its delivery time. Messages queued before a
// graceful peer Close still drain (stream semantics); a severed link
// or a drained closed stream reads as io.EOF, matching the TCP and
// pipe transports.
func (e *endpoint) Recv() (*wire.Message, error) {
	s := e.seg
	s.mu.Lock()
	defer s.mu.Unlock()
	q := e.in()
	for {
		if e.closed {
			return nil, transport.ErrClosed
		}
		if s.broken {
			return nil, io.EOF
		}
		if len(q.msgs) > 0 && !q.stalled {
			tm := q.msgs[0]
			q.msgs = q.msgs[1:]
			s.cond.Broadcast() // backpressure waiters
			e.node.observe(tm.at)
			// Back-half compute: the server spends its per-minibatch
			// forward+backward+step before it can do anything else with
			// this platform's activations (geonet's ServerCompute charge
			// point).
			if e.isServer && tm.m.Type == wire.MsgActivations {
				e.node.advance(s.link.net.opts.Compute.Server)
			}
			return tm.m, nil
		}
		if len(q.msgs) == 0 && q.senderClosed {
			return nil, io.EOF
		}
		s.cond.Wait()
	}
}

// Close shuts this endpoint down: its own operations return ErrClosed,
// the peer drains any delivered messages and then reads io.EOF.
func (e *endpoint) Close() error {
	s := e.seg
	s.mu.Lock()
	if !e.closed {
		e.closed = true
		q, _ := e.out()
		q.senderClosed = true
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	return nil
}

func (e *endpoint) peer() *endpoint {
	if e.isServer {
		return e.seg.platform
	}
	return e.seg.server
}
