package simnet

import (
	"testing"
	"time"

	"medsplit/internal/geonet"
	"medsplit/internal/transport/testutil"
	"medsplit/internal/wire"
)

// driveSplitRound runs one full 4-message split exchange over a link
// pair, returning after the platform received its cut gradient.
func driveSplitRound(t *testing.T, srv, plat interface {
	Send(*wire.Message) error
	Recv() (*wire.Message, error)
}, round, acts, logits, lossg, cutg int) {
	t.Helper()
	if err := plat.Send(msg(wire.MsgActivations, round, acts)); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Send(msg(wire.MsgLogits, round, logits)); err != nil {
		t.Fatal(err)
	}
	if _, err := plat.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := plat.Send(msg(wire.MsgLossGrad, round, lossg)); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Send(msg(wire.MsgCutGrad, round, cutg)); err != nil {
		t.Fatal(err)
	}
	if _, err := plat.Recv(); err != nil {
		t.Fatal(err)
	}
}

// The compute model's exact contract: with homogeneous compute and zero
// jitter, a strictly serialized split exchange measures precisely what
// geonet.SequentialSplitRoundTime predicts — transfer times plus the
// server charge at activations receipt and the platform charge at
// loss-gradient send — on every link of the default 5-hospital
// topology. Each platform runs on its own network so nothing overlaps,
// which is exactly the serialization the analytic estimator assumes.
func TestComputeMatchesSequentialEstimatorPerHospital(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	topo := geonet.DefaultHospitalTopology()
	regions := []geonet.Region{"snuh-seoul", "pusan-nat-univ", "chungang-univ", "korea-univ", "ucf-orlando"}
	const (
		actsP, logitsP, lossgP, cutgP = 200_000, 4_000, 4_000, 200_000
		serverC                       = 20 * time.Millisecond
		platformC                     = 2 * time.Millisecond
		rounds                        = 3
	)

	shape := geonet.SplitRoundShape{
		ActsBytes:     make([]int64, len(regions)),
		LogitsBytes:   make([]int64, len(regions)),
		LossGradBytes: make([]int64, len(regions)),
		CutGradBytes:  make([]int64, len(regions)),
		ServerCompute: serverC, PlatformCompute: platformC,
	}
	for k := range regions {
		shape.ActsBytes[k] = int64(wire.WireSizeFor(actsP))
		shape.LogitsBytes[k] = int64(wire.WireSizeFor(logitsP))
		shape.LossGradBytes[k] = int64(wire.WireSizeFor(lossgP))
		shape.CutGradBytes[k] = int64(wire.WireSizeFor(cutgP))
	}
	want, err := topo.SequentialSplitRoundTime(regions, shape)
	if err != nil {
		t.Fatal(err)
	}

	var measured time.Duration
	for _, reg := range regions {
		params, err := topo.Link(reg)
		if err != nil {
			t.Fatal(err)
		}
		n := New(Options{Compute: Compute{
			Server:   serverC,
			Platform: []time.Duration{platformC},
		}})
		srv, plat := n.AddLink(0, params)
		for r := 0; r < rounds; r++ {
			driveSplitRound(t, srv, plat, r, actsP, logitsP, lossgP, cutgP)
		}
		measured += n.Elapsed()
		srv.Close()
		plat.Close()
	}
	// geonet truncates latency+serialization to a Duration in one go;
	// simnet truncates them separately. Each delivery can differ by a
	// nanosecond, so the match is exact up to that float-truncation
	// noise (60 deliveries here), far below any physical time scale.
	diff := measured - rounds*want
	if diff < 0 {
		diff = -diff
	}
	if diff > time.Microsecond {
		t.Fatalf("measured %v over %d rounds, estimator predicts %v (per round %v vs %v)",
			measured, rounds, rounds*want, measured/rounds, want)
	}
}

// Compute charges are per-platform and only fire on the two training
// message types: platform k's loss-gradient send charges k's own entry,
// the server's activations receipt charges the server duration, and
// eval traffic stays free.
func TestComputeHeterogeneousAndScoped(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	n := New(Options{Compute: Compute{
		Server:   5 * time.Millisecond,
		Platform: []time.Duration{10 * time.Millisecond, 0},
	}})
	// Ideal links: any elapsed time is compute, not transfer.
	srv0, plat0 := n.AddLink(0, geonet.Link{})
	srv1, plat1 := n.AddLink(1, geonet.Link{})
	defer func() {
		for _, c := range []interface{ Close() error }{srv0, plat0, srv1, plat1} {
			c.Close()
		}
	}()

	// Eval traffic is never charged.
	if err := plat0.Send(msg(wire.MsgEvalActivations, 0, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := srv0.Recv(); err != nil {
		t.Fatal(err)
	}
	if got := n.Elapsed(); got != 0 {
		t.Fatalf("eval activations charged %v of compute", got)
	}

	// Training activations charge the server clock only.
	if err := plat1.Send(msg(wire.MsgActivations, 0, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := srv1.Recv(); err != nil {
		t.Fatal(err)
	}
	if got := n.Elapsed(); got != 5*time.Millisecond {
		t.Fatalf("server clock at %v after one activations receipt, want 5ms", got)
	}
	if got := n.PlatformClock(1); got != 0 {
		t.Fatalf("platform 1 clock moved to %v on its own send", got)
	}

	// Platform 0's loss gradient charges its 10ms; platform 1's is free.
	if err := plat0.Send(msg(wire.MsgLossGrad, 0, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := srv0.Recv(); err != nil {
		t.Fatal(err)
	}
	if got := n.PlatformClock(0); got != 10*time.Millisecond {
		t.Fatalf("platform 0 clock at %v after loss-grad send, want 10ms", got)
	}
	if err := plat1.Send(msg(wire.MsgLossGrad, 0, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := srv1.Recv(); err != nil {
		t.Fatal(err)
	}
	if got := n.PlatformClock(1); got != 0 {
		t.Fatalf("platform 1 (zero compute) clock at %v after loss-grad send", got)
	}
}

// Invalid compute specs are rejected at construction.
func TestComputeValidation(t *testing.T) {
	assertPanics(t, "negative server compute", func() {
		New(Options{Compute: Compute{Server: -time.Millisecond}})
	})
	assertPanics(t, "negative platform compute", func() {
		New(Options{Compute: Compute{Platform: []time.Duration{-1}}})
	})
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}
