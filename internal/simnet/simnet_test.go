package simnet

import (
	"errors"
	"io"
	"testing"
	"time"

	"medsplit/internal/geonet"
	"medsplit/internal/transport"
	"medsplit/internal/transport/testutil"
	"medsplit/internal/wire"
)

func msg(t wire.MsgType, round int, payload int) *wire.Message {
	return &wire.Message{Type: t, Round: uint32(round), Payload: make([]byte, payload)}
}

// One message over a known link must be delivered at exactly
// serialization + latency, and the receiver's clock must advance to
// that instant.
func TestTransferSchedule(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	n := New(Options{})
	srv, plat := n.AddLink(0, geonet.Link{LatencyMs: 10, Mbps: 8})

	m := msg(wire.MsgActivations, 0, 980) // WireSize = 980 + 20 header = 1000 B
	if err := plat.Send(m); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Recv(); err != nil {
		t.Fatal(err)
	}
	// 1000 B at 8 Mbps = 1 ms serialization, plus 10 ms latency.
	want := 11 * time.Millisecond
	if got := n.Elapsed(); got != want {
		t.Fatalf("elapsed %v, want %v", got, want)
	}
	if got := n.PlatformClock(0); got != 0 {
		t.Fatalf("sender clock advanced to %v on its own send", got)
	}
	srv.Close()
	plat.Close()
}

// Back-to-back messages serialize one after the other on the link
// (busy schedule), and delivery order is preserved even with jitter.
func TestSerializationQueueAndOrder(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	n := New(Options{Seed: 7, Jitter: 0.5})
	srv, plat := n.AddLink(0, geonet.Link{LatencyMs: 5, Mbps: 8})

	const count = 16
	for i := 0; i < count; i++ {
		if err := plat.Send(msg(wire.MsgActivations, i, 980)); err != nil {
			t.Fatal(err)
		}
	}
	var last time.Duration
	for i := 0; i < count; i++ {
		m, err := srv.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if int(m.Round) != i {
			t.Fatalf("message %d arrived out of order (round %d)", i, m.Round)
		}
		if at := n.Elapsed(); at < last {
			t.Fatalf("delivery time went backwards: %v after %v", at, last)
		} else {
			last = at
		}
	}
	// All 16 KB serialized at 8 Mbps take at least 16 ms even though the
	// latency is only 5 ms: the busy schedule is real.
	if minTotal := 16 * time.Millisecond; last < minTotal {
		t.Fatalf("elapsed %v, want at least %v of serialization", last, minTotal)
	}
	srv.Close()
	plat.Close()
}

// The same seed must reproduce the exact transfer schedule; a
// different seed must not (with jitter enabled).
func TestJitterDeterminism(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	run := func(seed uint64) time.Duration {
		n := New(Options{Seed: seed, Jitter: 0.3})
		srv, plat := n.AddLink(0, geonet.Link{LatencyMs: 20, Mbps: 50})
		defer srv.Close()
		defer plat.Close()
		for i := 0; i < 8; i++ {
			if err := plat.Send(msg(wire.MsgActivations, i, 4000)); err != nil {
				t.Fatal(err)
			}
			if _, err := srv.Recv(); err != nil {
				t.Fatal(err)
			}
		}
		return n.Elapsed()
	}
	a, b, c := run(1), run(1), run(2)
	if a != b {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	if a == c {
		t.Fatalf("different seeds produced identical schedules (%v)", a)
	}
}

// An ideal link (zero latency, unbounded bandwidth) moves no virtual
// time at all.
func TestIdealLinkZeroTime(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	n, pairs := Ideal(2, Options{})
	for _, p := range pairs {
		if err := p.Platform.Send(msg(wire.MsgActivations, 0, 1<<16)); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Server.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if got := n.Elapsed(); got != 0 {
		t.Fatalf("ideal links accumulated %v of virtual time", got)
	}
	for _, p := range pairs {
		p.Server.Close()
		p.Platform.Close()
	}
}

// A scripted fault severs the link when the matching message is sent:
// the sender errors, the peer reads EOF, in-flight messages are lost,
// and later operations on both ends keep failing.
func TestFaultSeversLink(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	n := New(Options{Faults: []Fault{
		{Platform: 0, Round: 2, Type: wire.MsgLossGrad, Dir: DirUp},
	}})
	srv, plat := n.AddLink(0, geonet.Link{LatencyMs: 1, Mbps: 100})

	// Round 0/1 traffic passes, including a round-2 message of another
	// type and direction.
	for r := 0; r < 2; r++ {
		if err := plat.Send(msg(wire.MsgLossGrad, r, 64)); err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Send(msg(wire.MsgLossGrad, 2, 64)); err != nil {
		t.Fatalf("down direction must not trigger an up fault: %v", err)
	}
	if err := plat.Send(msg(wire.MsgActivations, 2, 64)); err != nil {
		t.Fatalf("other type must not trigger: %v", err)
	}

	// The trigger: the in-flight activations above are lost with the
	// link.
	if err := plat.Send(msg(wire.MsgLossGrad, 2, 64)); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("severing send returned %v, want io.ErrClosedPipe", err)
	}
	if _, err := srv.Recv(); err != io.EOF {
		t.Fatalf("peer recv returned %v, want io.EOF", err)
	}
	if _, err := plat.Recv(); err != io.EOF {
		t.Fatalf("platform recv on severed link returned %v, want io.EOF", err)
	}
	if err := srv.Send(msg(wire.MsgCutGrad, 2, 64)); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("send on severed link returned %v, want io.ErrClosedPipe", err)
	}
	srv.Close()
	plat.Close()
}

// Swallow reports the triggering send as delivered while dropping it —
// the kernel-buffer failure mode the cut-grad replay recovers from.
func TestSwallowedSend(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	n := New(Options{Faults: []Fault{
		{Platform: 0, Round: 1, Type: wire.MsgCutGrad, Dir: DirDown, Swallow: true},
	}})
	srv, plat := n.AddLink(0, geonet.Link{LatencyMs: 1, Mbps: 100})
	if err := srv.Send(msg(wire.MsgCutGrad, 1, 64)); err != nil {
		t.Fatalf("swallowed send must report success, got %v", err)
	}
	if _, err := plat.Recv(); err != io.EOF {
		t.Fatalf("platform recv returned %v, want io.EOF (message swallowed)", err)
	}
	srv.Close()
	plat.Close()
}

// FaultKillServer models total server death: the triggering link and
// every other link sever at once, every link's redials fail for the
// FailDials budget, then all links come back — the window in which a
// warm follower promotes and platforms re-home to it.
func TestKillServerFault(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const platforms = 3
	n := New(Options{Faults: []Fault{
		{Platform: 1, Round: 3, Type: wire.MsgLossGrad, Dir: DirUp,
			Kind: FaultKillServer, FailDials: 2},
	}})
	srv := make([]transport.Conn, platforms)
	plat := make([]transport.Conn, platforms)
	for k := 0; k < platforms; k++ {
		srv[k], plat[k] = n.AddLink(k, geonet.Link{LatencyMs: 1, Mbps: 100})
	}
	// Pre-kill traffic flows on every link.
	for k := 0; k < platforms; k++ {
		if err := plat[k].Send(msg(wire.MsgActivations, 0, 64)); err != nil {
			t.Fatal(err)
		}
		if _, err := srv[k].Recv(); err != nil {
			t.Fatal(err)
		}
	}
	// The trigger, on platform 1's link only.
	if err := plat[1].Send(msg(wire.MsgLossGrad, 3, 64)); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("triggering send returned %v, want io.ErrClosedPipe", err)
	}
	// Every link is now dead, not just the triggering one.
	for k := 0; k < platforms; k++ {
		if err := plat[k].Send(msg(wire.MsgActivations, 3, 64)); !errors.Is(err, io.ErrClosedPipe) {
			t.Fatalf("platform %d send after kill returned %v, want io.ErrClosedPipe", k, err)
		}
		if _, err := srv[k].Recv(); err != io.EOF {
			t.Fatalf("server recv for platform %d after kill returned %v, want io.EOF", k, err)
		}
	}
	// Every link's dials fail while the shared FailDials budget lasts...
	for i := 0; i < 2; i++ {
		for k := 0; k < platforms; k++ {
			if _, _, err := n.Redial(k); err == nil {
				t.Fatalf("platform %d redial %d succeeded inside the FailDials window", k, i)
			}
		}
	}
	// ...then every platform dials into a fresh working segment.
	for k := 0; k < platforms; k++ {
		s2, p2, err := n.Redial(k)
		if err != nil {
			t.Fatalf("platform %d redial after window: %v", k, err)
		}
		if err := p2.Send(msg(wire.MsgRejoin, 3, 16)); err != nil {
			t.Fatal(err)
		}
		if _, err := s2.Recv(); err != nil {
			t.Fatal(err)
		}
		s2.Close()
		p2.Close()
	}
}

// A swallowed KillServer still takes the whole network down even
// though the triggering sender saw success.
func TestKillServerSwallowed(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	n := New(Options{Faults: []Fault{
		{Platform: 0, Round: 1, Type: wire.MsgCutGrad, Dir: DirDown,
			Kind: FaultKillServer, Swallow: true},
	}})
	srv0, plat0 := n.AddLink(0, geonet.Link{LatencyMs: 1, Mbps: 100})
	srv1, plat1 := n.AddLink(1, geonet.Link{LatencyMs: 1, Mbps: 100})
	if err := srv0.Send(msg(wire.MsgCutGrad, 1, 64)); err != nil {
		t.Fatalf("swallowed send must report success, got %v", err)
	}
	if _, err := plat0.Recv(); err != io.EOF {
		t.Fatalf("platform 0 recv returned %v, want io.EOF", err)
	}
	if err := plat1.Send(msg(wire.MsgActivations, 1, 64)); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("platform 1 send returned %v, want io.ErrClosedPipe", err)
	}
	if _, err := srv1.Recv(); err != io.EOF {
		t.Fatalf("server recv for platform 1 returned %v, want io.EOF", err)
	}
	srv0.Close()
	plat0.Close()
	srv1.Close()
	plat1.Close()
}

// Redial: fails deterministically while FailDials lasts, then yields a
// fresh working segment on the same clocks; the severed pair stays
// dead.
func TestRedialAfterFault(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	n := New(Options{Faults: []Fault{
		{Platform: 0, Round: 0, Type: wire.MsgLossGrad, FailDials: 2},
	}})
	srv, plat := n.AddLink(0, geonet.Link{LatencyMs: 2, Mbps: 100})
	if err := plat.Send(msg(wire.MsgLossGrad, 0, 64)); err == nil {
		t.Fatal("fault did not fire")
	}
	for i := 0; i < 2; i++ {
		if _, _, err := n.Redial(0); err == nil {
			t.Fatalf("redial %d succeeded inside the FailDials window", i)
		}
	}
	srv2, plat2, err := n.Redial(0)
	if err != nil {
		t.Fatalf("redial after FailDials: %v", err)
	}
	if err := plat2.Send(msg(wire.MsgRejoin, 0, 16)); err != nil {
		t.Fatal(err)
	}
	if _, err := srv2.Recv(); err != nil {
		t.Fatal(err)
	}
	// The old endpoints stay dead.
	if err := plat.Send(msg(wire.MsgActivations, 0, 16)); err == nil {
		t.Fatal("severed endpoint accepted a send after redial")
	}
	if _, _, err := n.Redial(99); err == nil {
		t.Fatal("redial of an unknown link succeeded")
	}
	srv.Close()
	plat.Close()
	srv2.Close()
	plat2.Close()
}

// Redial must never deadlock against a Send in flight on the segment
// it replaces (the Send holds the segment lock while consulting the
// fault script under the link lock; Redial severs the old segment only
// after releasing the link lock). This hammers the two paths
// concurrently — under -race and with the GOMAXPROCS the CI race job
// uses, an ordering inversion here parks both goroutines and times the
// test out.
func TestRedialDuringSendDoesNotDeadlock(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	n := New(Options{Faults: []Fault{{Platform: 0, Round: 999}}}) // pending fault keeps takeFault scanning
	_, plat := n.AddLink(0, geonet.Link{LatencyMs: 1, Mbps: 100})
	done := make(chan struct{})
	go func() {
		defer close(done)
		cur := plat
		// Fewer sends than the QueueCap: nobody drains, so a sender that
		// outlives the redial loop must not park on backpressure.
		for i := 0; i < 50; i++ {
			if err := cur.Send(msg(wire.MsgActivations, i, 64)); err != nil {
				// The segment was torn down under us: pick up the fresh one.
				_, fresh, rerr := n.Redial(0)
				if rerr == nil {
					cur = fresh
				}
			}
		}
	}()
	for i := 0; i < 200; i++ {
		if _, _, err := n.Redial(0); err != nil {
			t.Errorf("redial %d: %v", i, err)
		}
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("send/redial interleaving deadlocked")
	}
}

// Close semantics mirror the pipe transport: own operations fail with
// ErrClosed, the peer drains delivered messages and then reads EOF.
func TestCloseSemantics(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	n := New(Options{})
	srv, plat := n.AddLink(0, geonet.Link{LatencyMs: 1, Mbps: 100})
	if err := plat.Send(msg(wire.MsgActivations, 0, 64)); err != nil {
		t.Fatal(err)
	}
	plat.Close()
	if _, err := plat.Recv(); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("recv on closed endpoint: %v, want ErrClosed", err)
	}
	if err := plat.Send(msg(wire.MsgActivations, 1, 64)); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("send on closed endpoint: %v, want ErrClosed", err)
	}
	// The queued message still drains before EOF.
	if m, err := srv.Recv(); err != nil || m.Type != wire.MsgActivations {
		t.Fatalf("drain after peer close: %v, %v", m, err)
	}
	if _, err := srv.Recv(); err != io.EOF {
		t.Fatalf("recv after drain: %v, want io.EOF", err)
	}
	if err := srv.Send(msg(wire.MsgCutGrad, 0, 64)); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("send to closed peer: %v, want io.ErrClosedPipe", err)
	}
	srv.Close()
}

// QueueCap exerts backpressure: a sender parks once the peer stops
// draining and resumes when space frees.
func TestQueueCapBackpressure(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	n := New(Options{QueueCap: 2})
	srv, plat := n.AddLink(0, geonet.Link{})
	if err := plat.Send(msg(wire.MsgActivations, 0, 8)); err != nil {
		t.Fatal(err)
	}
	if err := plat.Send(msg(wire.MsgActivations, 1, 8)); err != nil {
		t.Fatal(err)
	}
	sent := make(chan error, 1)
	go func() { sent <- plat.Send(msg(wire.MsgActivations, 2, 8)) }()
	select {
	case err := <-sent:
		t.Fatalf("third send completed past QueueCap=2 (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := srv.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := <-sent; err != nil {
		t.Fatalf("backpressured send failed after drain: %v", err)
	}
	srv.Close()
	plat.Close()

	// A peer blocked on backpressure must also wake on close.
	n2 := New(Options{QueueCap: 1})
	srv2, plat2 := n2.AddLink(0, geonet.Link{})
	if err := plat2.Send(msg(wire.MsgActivations, 0, 8)); err != nil {
		t.Fatal(err)
	}
	sent2 := make(chan error, 1)
	go func() { sent2 <- plat2.Send(msg(wire.MsgActivations, 1, 8)) }()
	time.Sleep(10 * time.Millisecond)
	srv2.Close()
	if err := <-sent2; err == nil {
		t.Fatal("backpressured send survived peer close")
	}
	plat2.Close()
}

// A lockstep request/response session over several links replays the
// exact same virtual timeline run after run — the determinism claim
// the README documents for the sequential modes.
func TestLockstepElapsedDeterministic(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	topo := geonet.DefaultHospitalTopology()
	regions := Regions(topo)

	run := func() time.Duration {
		n, pairs, err := FromTopology(topo, regions, Options{Seed: 42, Jitter: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, len(pairs))
		for k, p := range pairs {
			go func(k int, c transport.Conn) {
				for r := 0; r < 5; r++ {
					if err := c.Send(msg(wire.MsgActivations, r, 4096)); err != nil {
						done <- err
						return
					}
					if _, err := c.Recv(); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}(k, p.Platform)
		}
		// A sequential server: platforms strictly in id order per round.
		for r := 0; r < 5; r++ {
			for _, p := range pairs {
				if _, err := p.Server.Recv(); err != nil {
					t.Fatal(err)
				}
				if err := p.Server.Send(msg(wire.MsgCutGrad, r, 2048)); err != nil {
					t.Fatal(err)
				}
			}
		}
		for range pairs {
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		}
		for _, p := range pairs {
			p.Server.Close()
			p.Platform.Close()
		}
		return n.Elapsed()
	}
	a, b := run(), run()
	if a != b || a == 0 {
		t.Fatalf("lockstep timelines diverged: %v vs %v", a, b)
	}
}

// SyntheticClinics topologies are deterministic in the seed and wire
// straight into the network builder.
func TestSyntheticClinicsFeedNetwork(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	topoA, regA := geonet.SyntheticClinics(40, 9)
	topoB, regB := geonet.SyntheticClinics(40, 9)
	if len(regA) != 40 || len(regB) != 40 {
		t.Fatalf("regions: %d / %d, want 40", len(regA), len(regB))
	}
	for i := range regA {
		la, _ := topoA.Link(regA[i])
		lb, _ := topoB.Link(regB[i])
		if la != lb || regA[i] != regB[i] {
			t.Fatalf("clinic %d differs across equal seeds: %v vs %v", i, la, lb)
		}
	}
	n, pairs, err := FromTopology(topoA, regA, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 40 {
		t.Fatalf("%d pairs, want 40", len(pairs))
	}
	for _, p := range pairs {
		p.Server.Close()
		p.Platform.Close()
	}
	_ = n
}
