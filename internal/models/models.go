// Package models builds the neural networks the paper evaluates — a
// VGG-style stack and a ResNet-style residual network — plus a small MLP
// for quickstarts, and provides the Split operation that cuts a network
// into the platform-side first hidden layer (the paper's L1) and the
// server-side remainder (L2 … Lk).
//
// The trainable models here are deliberately scaled down ("lite") so the
// full training-based experiments run on one CPU core; package commmodel
// carries exact shape specs of full-size VGG-16 and ResNet-18 for the
// analytic, paper-scale communication numbers. Both families preserve
// the property the paper's Fig. 4 turns on: model parameters outweigh
// first-hidden-layer activations per minibatch.
package models

import (
	"fmt"

	"medsplit/internal/nn"
	"medsplit/internal/rng"
)

// Model is a built network along with the metadata the experiment
// harness needs.
type Model struct {
	Name string
	Net  *nn.Sequential

	// DefaultCut is the layer index at which the paper's split places
	// the platform/server boundary: layers [0, DefaultCut) form L1 and
	// stay on the platform.
	DefaultCut int

	// InputShape is the per-sample input shape (e.g. [3, 32, 32]).
	InputShape []int

	// Classes is the output width.
	Classes int
}

// ParamCount returns the total number of trainable scalars.
func (m *Model) ParamCount() int { return nn.ParamCount(m.Net.Params()) }

// Split cuts a Sequential at the given layer index: layers [0, cut) form
// the front (platform side), layers [cut, n) the back (server side). The
// halves share the original layer instances, so training the halves
// trains the original network.
func Split(net *nn.Sequential, cut int) (front, back *nn.Sequential, err error) {
	layers := net.Layers()
	if cut <= 0 || cut >= len(layers) {
		return nil, nil, fmt.Errorf("models: cut %d outside (0, %d)", cut, len(layers))
	}
	front = nn.NewSequential(net.Name()+".front", layers[:cut]...)
	back = nn.NewSequential(net.Name()+".back", layers[cut:]...)
	return front, back, nil
}

// MLP builds a plain fully connected classifier with tanh activations:
// in → hidden... → classes. DefaultCut places the first Dense+Tanh pair
// (the first hidden layer) on the platform.
func MLP(in int, hidden []int, classes int, r *rng.RNG) *Model {
	if len(hidden) == 0 {
		panic("models: MLP needs at least one hidden layer")
	}
	var layers []nn.Layer
	prev := in
	for i, h := range hidden {
		layers = append(layers,
			nn.NewDense(fmt.Sprintf("fc%d", i+1), prev, h, r),
			nn.NewTanh(fmt.Sprintf("tanh%d", i+1)),
		)
		prev = h
	}
	layers = append(layers, nn.NewDense("head", prev, classes, r))
	return &Model{
		Name:       "mlp",
		Net:        nn.NewSequential("mlp", layers...),
		DefaultCut: 2, // first Dense + Tanh
		InputShape: []int{in},
		Classes:    classes,
	}
}

// VGGLite builds a scaled-down VGG-style network for 3×32×32 input:
// three conv/ReLU/maxpool stages doubling the channel width, then a
// two-layer dense head. width is the first stage's channel count
// (8 is the benchmark default; VGG-16 proper uses 64).
//
// DefaultCut = 3 keeps conv1+ReLU+pool — the first hidden layer in the
// paper's sense — on the platform.
func VGGLite(classes, width int, r *rng.RNG) *Model {
	if width <= 0 {
		panic("models: VGGLite width must be positive")
	}
	w1, w2, w3 := width, 2*width, 4*width
	layers := []nn.Layer{
		// Stage 1 (platform side under the default cut): 32×32 → 16×16.
		nn.NewConv2D("conv1", 3, w1, 3, 3, 1, 1, r),
		nn.NewReLU("relu1"),
		nn.NewMaxPool2D("pool1", 2, 2),
		// Stage 2: 16×16 → 8×8.
		nn.NewConv2D("conv2", w1, w2, 3, 3, 1, 1, r),
		nn.NewReLU("relu2"),
		nn.NewMaxPool2D("pool2", 2, 2),
		// Stage 3: 8×8 → 4×4.
		nn.NewConv2D("conv3", w2, w3, 3, 3, 1, 1, r),
		nn.NewReLU("relu3"),
		nn.NewMaxPool2D("pool3", 2, 2),
		// Head.
		nn.NewFlatten("flatten"),
		nn.NewDense("fc1", w3*4*4, 4*width*4, r),
		nn.NewReLU("relu4"),
		nn.NewDense("head", 4*width*4, classes, r),
	}
	return &Model{
		Name:       "vgg-lite",
		Net:        nn.NewSequential("vgg-lite", layers...),
		DefaultCut: 3,
		InputShape: []int{3, 32, 32},
		Classes:    classes,
	}
}

// ResNetLite builds a scaled-down ResNet-style network for 3×32×32
// input: a stem conv, three residual stages (the second and third
// downsampling by stride-2 projection shortcuts), global average pooling
// and a linear head. width is the stem's channel count.
//
// DefaultCut = 3 keeps the stem (conv+BN+ReLU) on the platform.
func ResNetLite(classes, width int, r *rng.RNG) *Model {
	if width <= 0 {
		panic("models: ResNetLite width must be positive")
	}
	w1, w2, w3 := width, 2*width, 4*width
	layers := []nn.Layer{
		// Stem (platform side under the default cut).
		nn.NewConv2D("stem.conv", 3, w1, 3, 3, 1, 1, r),
		nn.NewBatchNorm("stem.bn", w1),
		nn.NewReLU("stem.relu"),
		// Stage 1: identity residual block at 32×32.
		basicBlock("block1", w1, w1, 1, r),
		nn.NewReLU("block1.out"),
		// Stage 2: downsampling block to 16×16.
		basicBlock("block2", w1, w2, 2, r),
		nn.NewReLU("block2.out"),
		// Stage 3: downsampling block to 8×8.
		basicBlock("block3", w2, w3, 2, r),
		nn.NewReLU("block3.out"),
		// Head.
		nn.NewGlobalAvgPool("gap"),
		nn.NewDense("head", w3, classes, r),
	}
	return &Model{
		Name:       "resnet-lite",
		Net:        nn.NewSequential("resnet-lite", layers...),
		DefaultCut: 3,
		InputShape: []int{3, 32, 32},
		Classes:    classes,
	}
}

// basicBlock is the ResNet v1 basic block: conv-BN-ReLU-conv-BN with an
// identity shortcut, or a 1×1 strided projection when the shape changes.
func basicBlock(name string, inC, outC, stride int, r *rng.RNG) nn.Layer {
	body := nn.NewSequential(name+".body",
		nn.NewConv2D(name+".conv1", inC, outC, 3, 3, stride, 1, r),
		nn.NewBatchNorm(name+".bn1", outC),
		nn.NewReLU(name+".relu"),
		nn.NewConv2D(name+".conv2", outC, outC, 3, 3, 1, 1, r),
		nn.NewBatchNorm(name+".bn2", outC),
	)
	var skip nn.Layer
	if inC != outC || stride != 1 {
		skip = nn.NewSequential(name+".skip",
			nn.NewConv2D(name+".proj", inC, outC, 1, 1, stride, 0, r),
			nn.NewBatchNorm(name+".projbn", outC),
		)
	}
	return nn.NewResidual(name, body, skip)
}
