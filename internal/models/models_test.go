package models

import (
	"testing"

	"medsplit/internal/nn"
	"medsplit/internal/rng"
	"medsplit/internal/tensor"
)

func TestMLPShapes(t *testing.T) {
	m := MLP(10, []int{32, 16}, 4, rng.New(1))
	x := tensor.New(3, 10)
	y := m.Net.Forward(x, false)
	if y.Dim(0) != 3 || y.Dim(1) != 4 {
		t.Fatalf("output %v", y.Shape())
	}
	// 10*32+32 + 32*16+16 + 16*4+4 = 352 + 528 + 68 = 948
	if got := m.ParamCount(); got != 948 {
		t.Fatalf("ParamCount = %d, want 948", got)
	}
}

func TestVGGLiteForwardShapes(t *testing.T) {
	m := VGGLite(10, 8, rng.New(2))
	x := tensor.New(2, 3, 32, 32)
	y := m.Net.Forward(x, false)
	if y.Dim(0) != 2 || y.Dim(1) != 10 {
		t.Fatalf("output %v", y.Shape())
	}
	if m.DefaultCut != 3 {
		t.Fatalf("DefaultCut = %d", m.DefaultCut)
	}
}

func TestResNetLiteForwardShapes(t *testing.T) {
	m := ResNetLite(100, 8, rng.New(3))
	x := tensor.New(2, 3, 32, 32)
	y := m.Net.Forward(x, false)
	if y.Dim(0) != 2 || y.Dim(1) != 100 {
		t.Fatalf("output %v", y.Shape())
	}
}

func TestResNetLiteTrainStep(t *testing.T) {
	// One full forward/backward/step must run without shape errors and
	// reduce loss on a fixed batch within a few iterations.
	r := rng.New(4)
	m := ResNetLite(10, 4, r)
	x := tensor.New(8, 3, 32, 32)
	x.FillNormal(r, 0, 1)
	labels := []int{0, 1, 2, 3, 4, 5, 6, 7}
	opt := &nn.Momentum{LR: 0.05, Mu: 0.9}
	loss := nn.SoftmaxCrossEntropy{}
	var first, last float64
	for i := 0; i < 15; i++ {
		nn.ZeroGrads(m.Net.Params())
		logits := m.Net.Forward(x, true)
		l, g := loss.Loss(logits, labels)
		if i == 0 {
			first = l
		}
		last = l
		m.Net.Backward(g)
		opt.Step(m.Net.Params())
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestSplitSharesWeights(t *testing.T) {
	m := VGGLite(10, 4, rng.New(5))
	front, back, err := Split(m.Net, m.DefaultCut)
	if err != nil {
		t.Fatal(err)
	}
	if len(front.Layers())+len(back.Layers()) != len(m.Net.Layers()) {
		t.Fatal("split lost layers")
	}
	// Front holds conv1's parameters — the same tensors as the original.
	fp := front.Params()
	if len(fp) == 0 {
		t.Fatal("front has no parameters (L1 must be trainable)")
	}
	fp[0].W.Data()[0] = 42
	if m.Net.Params()[0].W.Data()[0] != 42 {
		t.Fatal("split must share weight storage with the original net")
	}
	// End-to-end equality: front→back equals the whole net.
	x := tensor.New(1, 3, 32, 32)
	x.FillNormal(rng.New(6), 0, 1)
	whole := m.Net.Forward(x, false)
	composed := back.Forward(front.Forward(x, false), false)
	if !tensor.AllClose(whole, composed, 1e-6) {
		t.Fatal("front∘back != whole network")
	}
}

func TestSplitRejectsBadCut(t *testing.T) {
	m := MLP(4, []int{8}, 2, rng.New(7))
	if _, _, err := Split(m.Net, 0); err == nil {
		t.Fatal("cut 0 must error")
	}
	if _, _, err := Split(m.Net, len(m.Net.Layers())); err == nil {
		t.Fatal("cut at end must error")
	}
}

func TestSameSeedSameWeights(t *testing.T) {
	a := VGGLite(10, 4, rng.New(9))
	b := VGGLite(10, 4, rng.New(9))
	pa, pb := a.Net.Params(), b.Net.Params()
	if len(pa) != len(pb) {
		t.Fatal("param structure differs")
	}
	for i := range pa {
		if !tensor.AllClose(pa[i].W, pb[i].W, 0) {
			t.Fatalf("param %d (%s) differs across same-seed builds", i, pa[i].Name)
		}
	}
}

func TestVGG16SpecParamCount(t *testing.T) {
	s := VGG16Spec(10)
	got := s.TotalParams()
	// CIFAR VGG-16: ~14.99M conv + 512·512 head ≈ 15.0M. Accept the
	// exact computed value but pin the magnitude to catch regressions.
	if got < 14_500_000 || got > 15_500_000 {
		t.Fatalf("VGG16 params = %d, want ~15M", got)
	}
	// First hidden layer: conv1 output 64×32×32.
	if act := s.CutActivations(s.FirstHiddenCut); act != 64*32*32 {
		t.Fatalf("cut activations = %d, want %d", act, 64*32*32)
	}
}

func TestResNet18SpecParamCount(t *testing.T) {
	s := ResNet18Spec(10)
	got := s.TotalParams()
	// Torchvision's CIFAR-style ResNet-18 has ~11.17M parameters.
	if got < 10_800_000 || got > 11_600_000 {
		t.Fatalf("ResNet18 params = %d, want ~11.2M", got)
	}
	if act := s.CutActivations(s.FirstHiddenCut); act != 64*32*32 {
		t.Fatalf("cut activations = %d, want %d", act, 64*32*32)
	}
}

func TestSpecClassesAffectHead(t *testing.T) {
	d10 := VGG16Spec(10).TotalParams()
	d100 := VGG16Spec(100).TotalParams()
	if d100-d10 != 90*512+90 {
		t.Fatalf("head growth %d, want %d", d100-d10, 90*512+90)
	}
}

func TestSpecCutPanicsOutOfRange(t *testing.T) {
	s := VGG16Spec(10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.CutActivations(0)
}
