package models

// This file describes full-size architectures by shape only. The paper's
// Fig. 4 reports communication volume for VGG and ResNet trained on
// CIFAR-10/100; training those at full size is out of reach for a
// single-core reproduction, but the bytes each scheme moves depend only
// on parameter and activation counts, which these specs give exactly.
// internal/commmodel consumes them.

// LayerShape records one layer's trainable parameter count and its
// output activation volume per input sample.
type LayerShape struct {
	Name         string
	Params       int
	OutPerSample int
}

// Spec is a full architecture description by shape.
type Spec struct {
	Name           string
	Classes        int
	InputPerSample int // floats per input sample (e.g. 3*32*32)
	Layers         []LayerShape

	// FirstHiddenCut is the index just past the paper's L1: cutting at
	// this index leaves the first conv (plus its activation) on the
	// platform.
	FirstHiddenCut int
}

// TotalParams sums trainable scalars over all layers.
func (s Spec) TotalParams() int {
	n := 0
	for _, l := range s.Layers {
		n += l.Params
	}
	return n
}

// CutActivations returns the per-sample activation volume crossing the
// platform/server boundary when the network is cut after layer index
// cut-1 (i.e. the output volume of layer cut-1).
func (s Spec) CutActivations(cut int) int {
	if cut <= 0 || cut > len(s.Layers) {
		panic("models: spec cut out of range")
	}
	return s.Layers[cut-1].OutPerSample
}

// specBuilder accumulates layers while tracking the spatial geometry of a
// CIFAR-style CHW pipeline.
type specBuilder struct {
	layers  []LayerShape
	c, h, w int
}

func (b *specBuilder) conv(name string, outC, k, stride, pad int) {
	// Parameters: weights outC×inC×k×k plus outC biases.
	params := outC*b.c*k*k + outC
	b.h = (b.h+2*pad-k)/stride + 1
	b.w = (b.w+2*pad-k)/stride + 1
	b.c = outC
	b.layers = append(b.layers, LayerShape{Name: name, Params: params, OutPerSample: b.c * b.h * b.w})
}

func (b *specBuilder) batchNorm(name string) {
	b.layers = append(b.layers, LayerShape{Name: name, Params: 2 * b.c, OutPerSample: b.c * b.h * b.w})
}

func (b *specBuilder) act(name string) {
	b.layers = append(b.layers, LayerShape{Name: name, OutPerSample: b.c * b.h * b.w})
}

func (b *specBuilder) maxPool(name string, k int) {
	b.h /= k
	b.w /= k
	b.layers = append(b.layers, LayerShape{Name: name, OutPerSample: b.c * b.h * b.w})
}

func (b *specBuilder) globalAvgPool(name string) {
	b.h, b.w = 1, 1
	b.layers = append(b.layers, LayerShape{Name: name, OutPerSample: b.c})
}

func (b *specBuilder) dense(name string, out int) {
	in := b.c * b.h * b.w
	b.layers = append(b.layers, LayerShape{Name: name, Params: in*out + out, OutPerSample: out})
	b.c, b.h, b.w = out, 1, 1
}

// VGG16Spec describes the CIFAR variant of VGG-16 (Simonyan & Zisserman
// configuration D): thirteen 3×3 convolutions in five pooled stages
// followed by a 512-512-classes dense head. ~15M parameters at 10
// classes.
func VGG16Spec(classes int) Spec {
	b := &specBuilder{c: 3, h: 32, w: 32}
	stage := func(n int, outC int, idx *int) {
		for i := 0; i < n; i++ {
			*idx++
			b.conv(nameN("conv", *idx), outC, 3, 1, 1)
			b.act(nameN("relu", *idx))
		}
	}
	idx := 0
	stage(2, 64, &idx)
	b.maxPool("pool1", 2)
	stage(2, 128, &idx)
	b.maxPool("pool2", 2)
	stage(3, 256, &idx)
	b.maxPool("pool3", 2)
	stage(3, 512, &idx)
	b.maxPool("pool4", 2)
	stage(3, 512, &idx)
	b.maxPool("pool5", 2)
	b.dense("fc1", 512)
	b.act("fc1.relu")
	b.dense("head", classes)
	return Spec{
		Name:           "vgg16",
		Classes:        classes,
		InputPerSample: 3 * 32 * 32,
		Layers:         b.layers,
		FirstHiddenCut: 2, // conv1 + relu1 stay on the platform
	}
}

// ResNet18Spec describes the CIFAR variant of ResNet-18: a 3×3 stem and
// four two-block stages at 64/128/256/512 channels with stride-2
// projection downsampling, global average pooling and a linear head.
// ~11M parameters at 10 classes.
func ResNet18Spec(classes int) Spec {
	b := &specBuilder{c: 3, h: 32, w: 32}
	b.conv("stem.conv", 64, 3, 1, 1)
	b.batchNorm("stem.bn")
	b.act("stem.relu")
	block := func(name string, outC, stride int) {
		inC := b.c
		b.conv(name+".conv1", outC, 3, stride, 1)
		b.batchNorm(name + ".bn1")
		b.act(name + ".relu1")
		b.conv(name+".conv2", outC, 3, 1, 1)
		b.batchNorm(name + ".bn2")
		if inC != outC || stride != 1 {
			// The projection shortcut runs on the same input geometry;
			// account its parameters on a zero-output bookkeeping row
			// (its output merges with conv2's, already counted).
			b.layers = append(b.layers, LayerShape{
				Name:   name + ".proj",
				Params: outC*inC + outC + 2*outC, // 1×1 conv + BN
			})
		}
		b.act(name + ".out")
	}
	block("s1b1", 64, 1)
	block("s1b2", 64, 1)
	block("s2b1", 128, 2)
	block("s2b2", 128, 1)
	block("s3b1", 256, 2)
	block("s3b2", 256, 1)
	block("s4b1", 512, 2)
	block("s4b2", 512, 1)
	b.globalAvgPool("gap")
	b.dense("head", classes)
	return Spec{
		Name:           "resnet18",
		Classes:        classes,
		InputPerSample: 3 * 32 * 32,
		Layers:         b.layers,
		FirstHiddenCut: 3, // stem conv + BN + relu stay on the platform
	}
}

func nameN(prefix string, n int) string {
	const digits = "0123456789"
	if n < 10 {
		return prefix + digits[n:n+1]
	}
	return prefix + digits[n/10:n/10+1] + digits[n%10:n%10+1]
}
