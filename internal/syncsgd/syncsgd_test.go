package syncsgd

import (
	"errors"
	"testing"

	"medsplit/internal/dataset"
	"medsplit/internal/models"
	"medsplit/internal/nn"
	"medsplit/internal/rng"
	"medsplit/internal/tensor"
	"medsplit/internal/transport"
	"medsplit/internal/wire"
)

func flatData(t *testing.T, classes, train, test int, seed uint64) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	tr, te := dataset.SynthCIFAR(dataset.SynthConfig{Classes: classes, Train: train, Test: test, Seed: seed})
	fl := func(d *dataset.Dataset) *dataset.Dataset {
		n := d.X.Dim(0)
		return &dataset.Dataset{X: d.X.Reshape(n, d.X.Size()/n), Labels: d.Labels, Classes: d.Classes}
	}
	return fl(tr), fl(te)
}

func buildModel(seed uint64, in, classes int) *nn.Sequential {
	return models.MLP(in, []int{32}, classes, rng.New(seed)).Net
}

func TestSyncSGDTrainsAndEvaluates(t *testing.T) {
	train, test := flatData(t, 4, 240, 60, 41)
	in := train.X.Dim(1)
	const rounds, K = 40, 3

	srv, err := NewServer(ServerConfig{
		Model:     buildModel(5, in, 4),
		Opt:       &nn.SGD{LR: 0.1},
		Workers:   K,
		Rounds:    rounds,
		EvalEvery: 20,
		EvalData:  test,
	})
	if err != nil {
		t.Fatal(err)
	}
	shards := dataset.ShardIID(train.Len(), K, rng.New(42))
	workers := make([]*Worker, K)
	meters := make([]*transport.Meter, K)
	for k := 0; k < K; k++ {
		meters[k] = &transport.Meter{}
		w, err := NewWorker(WorkerConfig{
			ID:        k,
			Model:     buildModel(5, in, 4),
			Loss:      nn.SoftmaxCrossEntropy{},
			Shard:     train.Subset(shards[k]),
			Batch:     8,
			Rounds:    rounds,
			EvalEvery: 20,
			Seed:      uint64(200 + k),
			Meter:     meters[k],
		})
		if err != nil {
			t.Fatal(err)
		}
		workers[k] = w
	}
	serverStats, workerStats, err := RunLocal(srv, workers)
	if err != nil {
		t.Fatal(err)
	}
	if len(serverStats.Evals) == 0 {
		t.Fatal("no evaluations recorded")
	}
	final := serverStats.Evals[len(serverStats.Evals)-1]
	if final.Accuracy < 0.3 {
		t.Fatalf("final accuracy %v (chance 0.25)", final.Accuracy)
	}
	// Loss decreases on workers.
	w0 := workerStats[0]
	if w0.Rounds[len(w0.Rounds)-1].Loss >= w0.Rounds[0].Loss {
		t.Fatalf("worker loss did not decrease: %v -> %v", w0.Rounds[0].Loss, w0.Rounds[len(w0.Rounds)-1].Loss)
	}
	// Communication per worker per round is ~2×|model| plus framing.
	modelBytes := int64(len(nn.EncodeParams(buildModel(5, in, 4).Params())))
	perRound := trainingBytes(meters[0]) / int64(rounds)
	if perRound < 2*modelBytes || perRound > 2*modelBytes+4096 {
		t.Fatalf("per-round worker traffic %d, want ≈ 2×%d", perRound, modelBytes)
	}
	if len(w0.Bytes) != len(serverStats.Evals) {
		t.Fatalf("byte snapshots %d, evals %d", len(w0.Bytes), len(serverStats.Evals))
	}
}

// With one worker, synchronous SGD must be bit-for-bit identical to
// centralized SGD on the same batch sequence.
func TestSyncSGDEqualsCentralizedSingleWorker(t *testing.T) {
	train, _ := flatData(t, 3, 64, 8, 43)
	in := train.X.Dim(1)
	const rounds = 8

	ref := buildModel(9, in, 3)
	refOpt := &nn.SGD{LR: 0.05}
	loss := nn.SoftmaxCrossEntropy{}
	sampler := dataset.NewBatchSampler(seqIdx(train.Len()), 8, rng.New(300^0x9e3779b97f4a7c15))
	for r := 0; r < rounds; r++ {
		x, labels := train.Batch(sampler.Next())
		nn.ZeroGrads(ref.Params())
		logits := ref.Forward(x, true)
		_, g := loss.Loss(logits, labels)
		ref.Backward(g)
		refOpt.Step(ref.Params())
	}

	global := buildModel(9, in, 3)
	srv, err := NewServer(ServerConfig{Model: global, Opt: &nn.SGD{LR: 0.05}, Workers: 1, Rounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorker(WorkerConfig{
		ID: 0, Model: buildModel(1234, in, 3), // junk init: server overwrites it
		Loss: loss, Shard: train, Batch: 8, Rounds: rounds, Seed: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunLocal(srv, []*Worker{w}); err != nil {
		t.Fatal(err)
	}
	refP, gotP := ref.Params(), global.Params()
	for i := range refP {
		if !tensor.AllClose(refP[i].W, gotP[i].W, 1e-6) {
			t.Fatalf("param %d diverged from centralized training", i)
		}
	}
}

func TestSyncSGDConfigValidation(t *testing.T) {
	train, test := flatData(t, 2, 16, 8, 44)
	in := train.X.Dim(1)
	model := buildModel(11, in, 2)
	if _, err := NewServer(ServerConfig{Opt: &nn.SGD{}, Workers: 1, Rounds: 1}); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := NewServer(ServerConfig{Model: model, Opt: &nn.SGD{}, Workers: 1, Rounds: 1, EvalEvery: 2}); err == nil {
		t.Fatal("EvalEvery without EvalData accepted")
	}
	if _, err := NewServer(ServerConfig{Model: model, Opt: &nn.SGD{}, Workers: 0, Rounds: 1, EvalData: test}); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := NewWorker(WorkerConfig{Model: model, Loss: nn.SoftmaxCrossEntropy{}, Shard: train, Batch: 0, Rounds: 1}); err == nil {
		t.Fatal("zero batch accepted")
	}
	if _, err := NewWorker(WorkerConfig{Model: model, Loss: nn.SoftmaxCrossEntropy{}, Batch: 4, Rounds: 1}); err == nil {
		t.Fatal("nil shard accepted")
	}
}

func TestSyncSGDRejectsRoundMismatch(t *testing.T) {
	train, _ := flatData(t, 2, 16, 8, 45)
	in := train.X.Dim(1)
	srv, err := NewServer(ServerConfig{Model: buildModel(13, in, 2), Opt: &nn.SGD{}, Workers: 1, Rounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorker(WorkerConfig{
		ID: 0, Model: buildModel(13, in, 2), Loss: nn.SoftmaxCrossEntropy{},
		Shard: train, Batch: 4, Rounds: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunLocal(srv, []*Worker{w}); err == nil {
		t.Fatal("round mismatch accepted")
	}
}

func TestDecodeGradsBatchStateRejectsGarbage(t *testing.T) {
	train, _ := flatData(t, 2, 16, 8, 46)
	model := buildModel(15, train.X.Dim(1), 2)
	params := model.Params()
	state := nn.CollectState(model)
	good := encodeGradsBatchState(params, 4, state)
	if _, _, _, err := decodeGradsBatchState(good[:10], params, state); !errors.Is(err, ErrProtocol) {
		t.Fatalf("truncated: %v", err)
	}
	if _, _, _, err := decodeGradsBatchState(append(good, 9), params, state); !errors.Is(err, ErrProtocol) {
		t.Fatalf("trailing: %v", err)
	}
	// Zero batch.
	bad := nn.EncodeGrads(params)
	zero := tensor.New()
	bad = zero.AppendTo(bad)
	if _, _, _, err := decodeGradsBatchState(bad, params, state); !errors.Is(err, ErrProtocol) {
		t.Fatalf("zero batch: %v", err)
	}
}

func TestServerRejectsBadHello(t *testing.T) {
	train, _ := flatData(t, 2, 16, 8, 47)
	srv, err := NewServer(ServerConfig{
		Model: buildModel(17, train.X.Dim(1), 2), Opt: &nn.SGD{}, Workers: 1, Rounds: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sConn, cConn := transport.Pipe()
	defer cConn.Close()
	errCh := make(chan error, 1)
	go func() {
		_, serr := srv.Serve([]transport.Conn{sConn})
		errCh <- serr
		sConn.Close()
	}()
	if err := cConn.Send(&wire.Message{Type: wire.MsgHello, Payload: wire.EncodeText("v=1;algo=fedavg;rounds=1;eval=0" + wire.FrameField())}); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; !errors.Is(err, ErrConfig) {
		t.Fatalf("err = %v, want ErrConfig", err)
	}
}

func seqIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Regression test: models with BatchNorm must evaluate correctly on the
// parameter server. Gradients alone never move the server's running
// statistics; the protocol ships them explicitly (nn.Stateful). Without
// that, this test's global model evaluates at chance.
func TestBatchNormStateReachesServer(t *testing.T) {
	train, test := flatData(t, 3, 180, 60, 48)
	in := train.X.Dim(1)
	buildBN := func(seed uint64) *nn.Sequential {
		r := rng.New(seed)
		return nn.NewSequential("bn-mlp",
			nn.NewDense("fc1", in, 24, r),
			nn.NewBatchNorm("bn1", 24),
			nn.NewTanh("tanh"),
			nn.NewDense("head", 24, 3, r),
		)
	}
	global := buildBN(31)
	srv, err := NewServer(ServerConfig{
		Model: global, Opt: &nn.SGD{LR: 0.1}, Workers: 2, Rounds: 40,
		EvalEvery: 20, EvalData: test,
	})
	if err != nil {
		t.Fatal(err)
	}
	shards := dataset.ShardIID(train.Len(), 2, rng.New(49))
	workers := make([]*Worker, 2)
	for k := 0; k < 2; k++ {
		w, err := NewWorker(WorkerConfig{
			ID: k, Model: buildBN(31), Loss: nn.SoftmaxCrossEntropy{},
			Shard: train.Subset(shards[k]), Batch: 16, Rounds: 40,
			EvalEvery: 20, Seed: uint64(600 + k),
		})
		if err != nil {
			t.Fatal(err)
		}
		workers[k] = w
	}
	serverStats, _, err := RunLocal(srv, workers)
	if err != nil {
		t.Fatal(err)
	}
	final := serverStats.Evals[len(serverStats.Evals)-1]
	if final.Accuracy < 0.5 {
		t.Fatalf("BN model at %.0f%% on the server (chance 33%%): running stats not synced", 100*final.Accuracy)
	}
	// The server's running statistics must have moved from init (0 mean).
	state := nn.CollectState(global)
	if len(state) != 2 {
		t.Fatalf("expected 2 state tensors, got %d", len(state))
	}
	if state[0].Norm() == 0 {
		t.Fatal("server running mean still at initialization")
	}
}
