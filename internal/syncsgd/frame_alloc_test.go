package syncsgd

import (
	"errors"
	"testing"

	"medsplit/internal/nn"
	"medsplit/internal/tensor"
	"medsplit/internal/transport"
	"medsplit/internal/wire"
)

// Regression test for frame-version negotiation: a worker built before
// the versioned hello (no ";frame=" field) is rejected fail-fast with a
// typed *wire.FrameSkewError instead of a misleading config mismatch.
func TestSyncSGDRejectsUnversionedHello(t *testing.T) {
	train, _ := flatData(t, 2, 16, 8, 60)
	srv, err := NewServer(ServerConfig{
		Model: buildModel(63, train.X.Dim(1), 2), Opt: &nn.SGD{}, Workers: 1, Rounds: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sConn, cConn := transport.Pipe()
	defer cConn.Close()
	errCh := make(chan error, 1)
	go func() {
		_, serr := srv.Serve([]transport.Conn{sConn})
		errCh <- serr
		sConn.Close()
	}()
	legacy := "v=1;algo=syncsgd;rounds=1;eval=0" // pre-negotiation hello
	if err := cConn.Send(&wire.Message{Type: wire.MsgHello, Payload: wire.EncodeText(legacy)}); err != nil {
		t.Fatal(err)
	}
	serr := <-errCh
	var skew *wire.FrameSkewError
	if !errors.As(serr, &skew) {
		t.Fatalf("err = %v, want *wire.FrameSkewError", serr)
	}
	if skew.Got >= 0 || skew.Want != wire.FrameVersion {
		t.Fatalf("skew = got %d want %d", skew.Got, skew.Want)
	}
	if !errors.Is(serr, wire.ErrBadVersion) {
		t.Fatalf("err = %v, want errors.Is(..., wire.ErrBadVersion)", serr)
	}
}

// The steady-state gradient exchange — pooled encode, staged decode,
// payload release — must not allocate once warm (the BufferPool parity
// assertion for this package).
func TestSyncSGDSteadyStateExchangeAllocFree(t *testing.T) {
	model := buildModel(33, 24, 2)
	params := model.Params()
	state := nn.CollectState(model)
	scalar := tensor.New()
	scalar.Set(8)
	var push payloadSizer
	var gs, st []*tensor.Tensor
	cycle := func() {
		payload := push.encodeGrads(params, scalar, state)
		var err error
		gs, _, st, err = decodeGradsBatchStateInto(gs, st, payload, params, state)
		if err != nil {
			t.Fatal(err)
		}
		wire.Buffers.Put(payload)
	}
	cycle() // warm the pool and staging
	if n := testing.AllocsPerRun(50, cycle); n != 0 {
		t.Fatalf("steady-state exchange allocates %v objects per round, want 0", n)
	}
}

// BenchmarkSyncSGDGradExchange measures one worker push worth of
// encode+decode through the pooled wire path; allocs/op must be 0 in
// steady state.
func BenchmarkSyncSGDGradExchange(b *testing.B) {
	model := buildModel(33, 3072, 10)
	params := model.Params()
	state := nn.CollectState(model)
	scalar := tensor.New()
	scalar.Set(64)
	var push payloadSizer
	var gs, st []*tensor.Tensor
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		payload := push.encodeGrads(params, scalar, state)
		var err error
		gs, _, st, err = decodeGradsBatchStateInto(gs, st, payload, params, state)
		if err != nil {
			b.Fatal(err)
		}
		wire.Buffers.Put(payload)
	}
}
