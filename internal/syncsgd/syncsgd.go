// Package syncsgd implements the paper's evaluation baseline: Large-
// Scale Synchronous SGD (Chen et al., arXiv:1604.00981) over a parameter
// server. Every worker holds a full replica of the model; each round the
// server broadcasts the current weights, every worker computes the
// gradient of one local minibatch, pushes the full gradient back, and
// the server applies the batch-size-weighted average gradient.
//
// Per round each worker therefore moves 2×|model| bytes (weights down,
// gradients up) — the communication profile the paper's Fig. 4 compares
// the split framework against. The protocol runs over the same wire and
// transport stack as the split engine so byte accounting is identical.
package syncsgd

import (
	"errors"
	"fmt"
	"sync"

	"medsplit/internal/dataset"
	"medsplit/internal/nn"
	"medsplit/internal/rng"
	"medsplit/internal/tensor"
	"medsplit/internal/transport"
	"medsplit/internal/wire"
)

// Protocol errors.
var (
	// ErrProtocol reports an out-of-sequence or malformed message.
	ErrProtocol = errors.New("syncsgd: protocol violation")
	// ErrConfig reports an invalid configuration.
	ErrConfig = errors.New("syncsgd: invalid configuration")
)

// ServerConfig configures the parameter server.
type ServerConfig struct {
	// Model is the server's authoritative full model.
	Model *nn.Sequential
	// Opt applies the aggregated gradient each round.
	Opt nn.Optimizer
	// Workers is the number of workers that will connect.
	Workers int
	// Rounds is the number of synchronous rounds.
	Rounds int
	// ClipGrads, when positive, clamps the aggregated gradient.
	ClipGrads float32
	// EvalEvery, when positive, evaluates EvalData on the global model
	// every so many rounds (and after the final round). Evaluation is
	// local to the server: parameter-exchange schemes hold the full
	// model centrally, so it costs no communication.
	EvalEvery int
	// EvalData is the held-out test set (required when EvalEvery > 0).
	EvalData *dataset.Dataset
	// EvalBatch is the evaluation batch size (default 64).
	EvalBatch int
}

// EvalStat is one evaluation point of the global model.
type EvalStat struct {
	Round    int
	Accuracy float64
}

// ServerStats is what the parameter server measured.
type ServerStats struct {
	Evals []EvalStat
}

// Server is the parameter server.
type Server struct {
	cfg ServerConfig
}

// NewServer validates cfg and builds the parameter server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("%w: nil model", ErrConfig)
	}
	if cfg.Opt == nil {
		return nil, fmt.Errorf("%w: nil optimizer", ErrConfig)
	}
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("%w: %d workers", ErrConfig, cfg.Workers)
	}
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("%w: %d rounds", ErrConfig, cfg.Rounds)
	}
	if cfg.EvalEvery > 0 && cfg.EvalData == nil {
		return nil, fmt.Errorf("%w: EvalEvery without EvalData", ErrConfig)
	}
	if cfg.EvalBatch == 0 {
		cfg.EvalBatch = 64
	}
	return &Server{cfg: cfg}, nil
}

// Serve drives the protocol over the per-worker connections and returns
// the server's evaluation curve.
func (s *Server) Serve(conns []transport.Conn) (*ServerStats, error) {
	if len(conns) != s.cfg.Workers {
		return nil, fmt.Errorf("%w: %d connections for %d workers", ErrConfig, len(conns), s.cfg.Workers)
	}
	if err := s.handshake(conns); err != nil {
		return nil, err
	}
	stats := &ServerStats{}
	params := s.cfg.Model.Params()
	state := nn.CollectState(s.cfg.Model)
	stagingGrads := make([][]*tensor.Tensor, len(conns))
	stagingState := make([][]*tensor.Tensor, len(conns))
	stateViews := make([][]*tensor.Tensor, len(conns))
	stateWeights := make([]float64, len(conns))
	sums := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		sums[i] = tensor.New(p.G.Shape()...)
	}
	var bcast payloadSizer
	var prevBcast []byte
	for r := 0; r < s.cfg.Rounds; r++ {
		// Broadcast current weights along with normalization state. The
		// previous round's broadcast buffer is free again by now — every
		// worker decoded it before pushing its round-r-1 gradient — so
		// the server (never the receivers of a shared payload) recycles
		// it, keeping the round loop allocation-free.
		wire.Buffers.Put(prevBcast)
		payload := bcast.encodeModel(params, state)
		prevBcast = payload
		for k, conn := range conns {
			if err := conn.Send(&wire.Message{
				Type:     wire.MsgModelPush,
				Platform: uint32(k),
				Round:    uint32(r),
				Payload:  payload,
			}); err != nil {
				return nil, fmt.Errorf("syncsgd: broadcasting round %d to worker %d: %w", r, k, err)
			}
		}
		// Collect gradients; accumulate the batch-size-weighted sum.
		nn.ZeroGrads(params)
		var totalBatch float64
		for _, t := range sums {
			d := t.Data()
			for j := range d {
				d[j] = 0
			}
		}
		for k, conn := range conns {
			m, err := recvExpect(conn, wire.MsgGradPush, r)
			if err != nil {
				return nil, fmt.Errorf("syncsgd: gradients from worker %d: %w", k, err)
			}
			grads, batch, wstate, err := decodeGradsBatchStateInto(stagingGrads[k], stagingState[k], m.Payload, params, state)
			if err != nil {
				return nil, fmt.Errorf("syncsgd: worker %d: %w", k, err)
			}
			wire.ReleasePayload(&wire.Buffers, m)
			stagingGrads[k] = grads
			stagingState[k] = wstate
			stateViews[k] = wstate[:len(state)]
			for i := range sums {
				sums[i].AxpyInPlace(float32(batch), grads[i])
			}
			totalBatch += float64(batch)
			stateWeights[k] = float64(batch)
		}
		if totalBatch == 0 {
			return nil, fmt.Errorf("%w: zero total batch", ErrProtocol)
		}
		inv := float32(1 / totalBatch)
		for i, p := range params {
			p.G.AxpyInPlace(inv, sums[i])
		}
		if s.cfg.ClipGrads > 0 {
			nn.ClipGrads(params, s.cfg.ClipGrads)
		}
		s.cfg.Opt.Step(params)
		// Normalization state does not flow through gradients; install
		// the batch-weighted average of the workers' statistics so the
		// global model evaluates correctly.
		if len(state) > 0 {
			if err := nn.AverageStateInto(state, stateViews, stateWeights); err != nil {
				return nil, fmt.Errorf("syncsgd: aggregating state: %w", err)
			}
		}

		if s.evalRound(r) {
			stats.Evals = append(stats.Evals, EvalStat{
				Round:    r,
				Accuracy: s.evaluate(),
			})
		}
	}
	for k, conn := range conns {
		if _, err := recvExpect(conn, wire.MsgBye, -1); err != nil {
			return nil, fmt.Errorf("syncsgd: worker %d shutdown: %w", k, err)
		}
	}
	return stats, nil
}

func (s *Server) evalRound(r int) bool {
	if s.cfg.EvalEvery <= 0 {
		return false
	}
	return (r+1)%s.cfg.EvalEvery == 0 || r == s.cfg.Rounds-1
}

// evaluate measures global-model accuracy on the held-out set.
func (s *Server) evaluate() float64 {
	data := s.cfg.EvalData
	n := data.Len()
	correct := 0
	for off := 0; off < n; off += s.cfg.EvalBatch {
		end := off + s.cfg.EvalBatch
		if end > n {
			end = n
		}
		idx := make([]int, end-off)
		for i := range idx {
			idx[i] = off + i
		}
		x, labels := data.Batch(idx)
		logits := s.cfg.Model.Forward(x, false)
		pred := tensor.ArgmaxRows(logits)
		for i, c := range pred {
			if c == labels[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(n)
}

func (s *Server) handshake(conns []transport.Conn) error {
	want := fmt.Sprintf("v=1;algo=syncsgd;rounds=%d;eval=%d", s.cfg.Rounds, s.cfg.EvalEvery)
	for k, conn := range conns {
		m, err := recvExpect(conn, wire.MsgHello, -1)
		if err != nil {
			return fmt.Errorf("syncsgd: hello from worker %d: %w", k, err)
		}
		if int(m.Platform) != k {
			return fmt.Errorf("%w: connection %d identifies as worker %d", ErrProtocol, k, m.Platform)
		}
		meta, err := wire.DecodeText(m.Payload)
		if err != nil {
			return fmt.Errorf("syncsgd: hello meta from worker %d: %w", k, err)
		}
		base, err := wire.CutFrameField(meta)
		if err != nil {
			return fmt.Errorf("syncsgd: worker %d: %w", k, err)
		}
		if base != want {
			return fmt.Errorf("%w: worker %d config %q, server %q", ErrConfig, k, base, want)
		}
		if err := conn.Send(&wire.Message{Type: wire.MsgHelloAck, Platform: uint32(k)}); err != nil {
			return fmt.Errorf("syncsgd: acking worker %d: %w", k, err)
		}
	}
	return nil
}

// WorkerConfig configures one data-holding worker.
type WorkerConfig struct {
	// ID is the worker index.
	ID int
	// Model is the worker's local replica (same architecture as the
	// server's; weights are overwritten by the first broadcast).
	Model *nn.Sequential
	// Loss computes the training loss.
	Loss nn.Loss
	// Shard is the worker's local data.
	Shard *dataset.Dataset
	// Batch is the local minibatch size.
	Batch int
	// Rounds must match the server.
	Rounds int
	// EvalEvery must match the server (workers snapshot their traffic at
	// evaluation rounds so the harness can align bytes with accuracy).
	EvalEvery int
	// Seed seeds the minibatch sampler.
	Seed uint64
	// Meter, when set, enables traffic snapshots.
	Meter *transport.Meter
}

// RoundStat is one local round's record.
type RoundStat struct {
	Round int
	Loss  float64
	Batch int
}

// ByteStat snapshots cumulative training traffic at a round boundary.
type ByteStat struct {
	Round         int
	TrainingBytes int64
}

// WorkerStats is everything a worker measured.
type WorkerStats struct {
	Rounds []RoundStat
	Bytes  []ByteStat
}

// Worker runs the worker side of the protocol.
type Worker struct {
	cfg     WorkerConfig
	sampler *dataset.BatchSampler
}

// NewWorker validates cfg and builds a worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("%w: nil model", ErrConfig)
	}
	if cfg.Loss == nil {
		return nil, fmt.Errorf("%w: nil loss", ErrConfig)
	}
	if cfg.Shard == nil || cfg.Shard.Len() == 0 {
		return nil, fmt.Errorf("%w: worker %d has no data", ErrConfig, cfg.ID)
	}
	if cfg.Batch <= 0 || cfg.Rounds <= 0 {
		return nil, fmt.Errorf("%w: batch %d rounds %d", ErrConfig, cfg.Batch, cfg.Rounds)
	}
	indices := make([]int, cfg.Shard.Len())
	for i := range indices {
		indices[i] = i
	}
	return &Worker{
		cfg:     cfg,
		sampler: dataset.NewBatchSampler(indices, cfg.Batch, rng.New(cfg.Seed^0x9e3779b97f4a7c15)),
	}, nil
}

// Run executes the worker protocol over conn and returns measurements.
func (w *Worker) Run(conn transport.Conn) (*WorkerStats, error) {
	meta := fmt.Sprintf("v=1;algo=syncsgd;rounds=%d;eval=%d%s", w.cfg.Rounds, w.cfg.EvalEvery, wire.FrameField())
	if err := conn.Send(&wire.Message{
		Type:     wire.MsgHello,
		Platform: uint32(w.cfg.ID),
		Payload:  wire.EncodeText(meta),
	}); err != nil {
		return nil, fmt.Errorf("syncsgd: worker %d hello: %w", w.cfg.ID, err)
	}
	if _, err := recvExpect(conn, wire.MsgHelloAck, -1); err != nil {
		return nil, fmt.Errorf("syncsgd: worker %d handshake: %w", w.cfg.ID, err)
	}
	stats := &WorkerStats{}
	params := w.cfg.Model.Params()
	state := nn.CollectState(w.cfg.Model)
	var scratch []*tensor.Tensor
	scalar := tensor.New()
	var push payloadSizer
	for r := 0; r < w.cfg.Rounds; r++ {
		m, err := recvExpect(conn, wire.MsgModelPush, r)
		if err != nil {
			return nil, fmt.Errorf("syncsgd: worker %d round %d: %w", w.cfg.ID, r, err)
		}
		// Broadcast payloads are shared across workers over in-process
		// pipes: decode through reusable scratch, never release.
		scratch, err = nn.DecodeModelScratch(scratch, params, state, m.Payload)
		if err != nil {
			return nil, fmt.Errorf("syncsgd: worker %d installing model: %w", w.cfg.ID, err)
		}
		x, labels := w.cfg.Shard.Batch(w.sampler.Next())
		nn.ZeroGrads(params)
		logits := w.cfg.Model.Forward(x, true)
		loss, g := w.cfg.Loss.Loss(logits, labels)
		w.cfg.Model.Backward(g)
		stats.Rounds = append(stats.Rounds, RoundStat{Round: r, Loss: loss, Batch: len(labels)})

		scalar.Set(float32(len(labels)))
		payload := push.encodeGrads(params, scalar, state)
		if err := conn.Send(&wire.Message{
			Type:     wire.MsgGradPush,
			Platform: uint32(w.cfg.ID),
			Round:    uint32(r),
			Payload:  payload,
		}); err != nil {
			return nil, fmt.Errorf("syncsgd: worker %d pushing gradients: %w", w.cfg.ID, err)
		}
		if w.evalRound(r) && w.cfg.Meter != nil {
			stats.Bytes = append(stats.Bytes, ByteStat{Round: r, TrainingBytes: trainingBytes(w.cfg.Meter)})
		}
	}
	if err := conn.Send(&wire.Message{Type: wire.MsgBye, Platform: uint32(w.cfg.ID)}); err != nil {
		return nil, fmt.Errorf("syncsgd: worker %d bye: %w", w.cfg.ID, err)
	}
	return stats, nil
}

func (w *Worker) evalRound(r int) bool {
	if w.cfg.EvalEvery <= 0 {
		return false
	}
	return (r+1)%w.cfg.EvalEvery == 0 || r == w.cfg.Rounds-1
}

// payloadSizer remembers the largest payload a call site has produced
// so the next round's pooled buffer is already big enough and the
// appends never reallocate (same idiom as the core engine's wire path).
type payloadSizer struct{ max int }

// encodeModel packs the model (weights + state) into a pooled buffer.
func (ps *payloadSizer) encodeModel(params []*nn.Param, state []*tensor.Tensor) []byte {
	buf := nn.EncodeModelInto(wire.Buffers.Get(ps.max), params, state)
	if len(buf) > ps.max {
		ps.max = len(buf)
	}
	return buf
}

// encodeGrads packs gradients, the batch-size scalar and normalization
// state into a pooled buffer — the worker's push payload.
func (ps *payloadSizer) encodeGrads(params []*nn.Param, scalar *tensor.Tensor, state []*tensor.Tensor) []byte {
	buf := wire.Buffers.Get(ps.max)
	for _, p := range params {
		buf = p.G.AppendTo(buf)
	}
	buf = scalar.AppendTo(buf)
	for _, t := range state {
		buf = t.AppendTo(buf)
	}
	if len(buf) > ps.max {
		ps.max = len(buf)
	}
	return buf
}

// encodeGradsBatchState appends the minibatch size (as a scalar
// tensor) and the worker's normalization state to the gradient payload,
// so the server can weight the gradient average and aggregate the
// statistics.
func encodeGradsBatchState(params []*nn.Param, batch int, state []*tensor.Tensor) []byte {
	scalar := tensor.New()
	scalar.Set(float32(batch))
	var ps payloadSizer
	return ps.encodeGrads(params, scalar, state)
}

// decodeGradsBatchState splits a gradient payload back into per-param
// tensors, the batch size, and the worker's normalization state.
func decodeGradsBatchState(buf []byte, params []*nn.Param, stateShape []*tensor.Tensor) ([]*tensor.Tensor, int, []*tensor.Tensor, error) {
	gs, batch, st, err := decodeGradsBatchStateInto(nil, nil, buf, params, stateShape)
	if err != nil {
		return nil, 0, nil, err
	}
	return gs, batch, st[:len(stateShape)], nil
}

// decodeGradsBatchStateInto is decodeGradsBatchState reusing the
// caller's staging tensors (grown on first use), so the server's
// steady-state receive path decodes without allocating. The returned
// state slice carries the batch-size scalar in its last slot; decoded
// tensors never alias buf, so the caller may release the payload
// immediately after.
func decodeGradsBatchStateInto(gs, st []*tensor.Tensor, buf []byte, params []*nn.Param, stateShape []*tensor.Tensor) ([]*tensor.Tensor, int, []*tensor.Tensor, error) {
	if len(gs) != len(params) {
		gs = make([]*tensor.Tensor, len(params))
	}
	if len(st) != len(stateShape)+1 {
		st = make([]*tensor.Tensor, len(stateShape)+1)
	}
	for i, p := range params {
		t, rest, err := tensor.DecodeInto(gs[i], buf)
		if err != nil {
			return gs, 0, st, fmt.Errorf("%w: gradient %d: %v", ErrProtocol, i, err)
		}
		gs[i] = t
		if !tensor.SameShape(t, p.G) {
			return gs, 0, st, fmt.Errorf("%w: gradient %d shape %v, want %v", ErrProtocol, i, t.Shape(), p.G.Shape())
		}
		buf = rest
	}
	scalar, rest, err := tensor.DecodeInto(st[len(stateShape)], buf)
	if err != nil || scalar.Size() != 1 {
		return gs, 0, st, fmt.Errorf("%w: bad batch-size trailer", ErrProtocol)
	}
	st[len(stateShape)] = scalar
	batch := int(scalar.At())
	if batch <= 0 {
		return gs, 0, st, fmt.Errorf("%w: batch size %d", ErrProtocol, batch)
	}
	buf = rest
	for i, want := range stateShape {
		t, r2, err := tensor.DecodeInto(st[i], buf)
		if err != nil {
			return gs, 0, st, fmt.Errorf("%w: state %d: %v", ErrProtocol, i, err)
		}
		st[i] = t
		if !tensor.SameShape(t, want) {
			return gs, 0, st, fmt.Errorf("%w: state %d shape %v, want %v", ErrProtocol, i, t.Shape(), want.Shape())
		}
		buf = r2
	}
	if len(buf) != 0 {
		return gs, 0, st, fmt.Errorf("%w: %d trailing bytes", ErrProtocol, len(buf))
	}
	return gs, batch, st, nil
}

// trainingBytes counts parameter-exchange traffic in both directions.
func trainingBytes(m *transport.Meter) int64 {
	return m.TxBytesByType(wire.MsgGradPush) + m.RxBytesByType(wire.MsgGradPush) +
		m.TxBytesByType(wire.MsgModelPush) + m.RxBytesByType(wire.MsgModelPush) +
		m.TxBytesByType(wire.MsgModelPull) + m.RxBytesByType(wire.MsgModelPull)
}

// recvExpect reads one message and validates type and round.
func recvExpect(conn transport.Conn, want wire.MsgType, round int) (*wire.Message, error) {
	m, err := conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("syncsgd: receiving %s: %w", want, err)
	}
	if m.Type != want {
		return nil, fmt.Errorf("%w: got %s, want %s", ErrProtocol, m.Type, want)
	}
	if round >= 0 && m.Round != uint32(round) {
		return nil, fmt.Errorf("%w: %s for round %d, want %d", ErrProtocol, m.Type, m.Round, round)
	}
	return m, nil
}

// RunLocal wires a parameter server and workers over in-process pipes
// and runs the full session, returning the server stats and per-worker
// stats.
func RunLocal(server *Server, workers []*Worker) (*ServerStats, []*WorkerStats, error) {
	if server == nil {
		return nil, nil, fmt.Errorf("%w: nil server", ErrConfig)
	}
	if len(workers) != server.cfg.Workers {
		return nil, nil, fmt.Errorf("%w: %d workers for a %d-worker server", ErrConfig, len(workers), server.cfg.Workers)
	}
	serverConns := make([]transport.Conn, len(workers))
	workerConns := make([]transport.Conn, len(workers))
	for k, w := range workers {
		s, c := transport.Pipe()
		serverConns[k] = s
		if w.cfg.Meter != nil {
			c = transport.Metered(c, w.cfg.Meter)
		}
		workerConns[k] = c
	}
	defer func() {
		for k := range workers {
			serverConns[k].Close()
			workerConns[k].Close()
		}
	}()

	var serverStats *ServerStats
	workerStats := make([]*WorkerStats, len(workers))
	errs := make([]error, len(workers)+1)
	var wg sync.WaitGroup
	wg.Add(len(workers) + 1)
	go func() {
		defer wg.Done()
		st, err := server.Serve(serverConns)
		if err != nil {
			errs[0] = fmt.Errorf("server: %w", err)
			for _, c := range serverConns {
				c.Close()
			}
			return
		}
		serverStats = st
	}()
	for k, w := range workers {
		k, w := k, w
		go func() {
			defer wg.Done()
			st, err := w.Run(workerConns[k])
			if err != nil {
				errs[k+1] = fmt.Errorf("worker %d: %w", k, err)
				workerConns[k].Close()
				return
			}
			workerStats[k] = st
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, nil, err
	}
	return serverStats, workerStats, nil
}
