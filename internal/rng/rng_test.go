package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must not replay the parent stream.
	p := New(7)
	p.Uint64() // advance past the Split draw
	for i := 0; i < 100; i++ {
		if child.Uint64() == p.Uint64() {
			t.Fatalf("child stream tracks parent at step %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := draws / n
	for k, c := range counts {
		if math.Abs(float64(c-want)) > 0.05*float64(want) {
			t.Errorf("bucket %d: %d draws, want ~%d (±5%%)", k, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32() = %v out of [0,1)", v)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(9)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(17)
	p := []int{5, 5, 7, 9, 9, 9}
	r.Shuffle(p)
	counts := map[int]int{}
	for _, v := range p {
		counts[v]++
	}
	if counts[5] != 2 || counts[7] != 1 || counts[9] != 3 {
		t.Fatalf("Shuffle changed multiset: %v", p)
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	r := New(19)
	for _, alpha := range []float64{0.1, 0.5, 1, 10} {
		out := make([]float64, 10)
		r.Dirichlet(alpha, out)
		var sum float64
		for _, v := range out {
			if v < 0 {
				t.Fatalf("alpha=%v: negative probability %v", alpha, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("alpha=%v: probabilities sum to %v", alpha, sum)
		}
	}
}

func TestDirichletSkewIncreasesAsAlphaShrinks(t *testing.T) {
	r := New(23)
	maxAt := func(alpha float64) float64 {
		// Average the max probability over several draws.
		var total float64
		const reps = 50
		out := make([]float64, 10)
		for i := 0; i < reps; i++ {
			r.Dirichlet(alpha, out)
			m := 0.0
			for _, v := range out {
				if v > m {
					m = v
				}
			}
			total += m
		}
		return total / reps
	}
	skewed := maxAt(0.1)
	flat := maxAt(100)
	if skewed <= flat {
		t.Fatalf("max probability at alpha=0.1 (%v) should exceed alpha=100 (%v)", skewed, flat)
	}
}

func TestMul64AgainstBigProducts(t *testing.T) {
	// Property: mul64 must agree with the 128-bit product computed via
	// decomposition into 32-bit halves using big-friendly arithmetic.
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify via a second independent decomposition.
		aLo, aHi := a&0xffffffff, a>>32
		bLo, bHi := b&0xffffffff, b>>32
		lo2 := a * b // wrap-around low 64 bits
		carry := ((aLo*bLo)>>32 + (aHi*bLo)&0xffffffff + (aLo*bHi)&0xffffffff) >> 32
		hi2 := aHi*bHi + (aHi*bLo)>>32 + (aLo*bHi)>>32 + carry
		return lo == lo2 && hi == hi2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormFloat32Finite(t *testing.T) {
	r := New(29)
	for i := 0; i < 10000; i++ {
		v := r.NormFloat32()
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("NormFloat32 produced %v", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Norm()
	}
}

// A restored RNG must continue the stream exactly where the snapshot
// was taken — including the Box-Muller spare, which Norm caches between
// calls.
func TestSnapshotRestoreResumesStream(t *testing.T) {
	r := New(99)
	for i := 0; i < 17; i++ {
		r.Uint64()
	}
	r.Norm() // leaves a cached spare variate
	snap := r.Snapshot()
	if !snap.HasCachedNorm {
		t.Fatal("snapshot lost the cached Box-Muller spare")
	}

	var want []uint64
	var wantNorm []float64
	for i := 0; i < 50; i++ {
		want = append(want, r.Uint64())
		wantNorm = append(wantNorm, r.Norm())
	}

	r2 := New(0)
	r2.Restore(snap)
	for i := 0; i < 50; i++ {
		if got := r2.Uint64(); got != want[i] {
			t.Fatalf("Uint64 %d: restored stream %d, want %d", i, got, want[i])
		}
		if got := r2.Norm(); got != wantNorm[i] {
			t.Fatalf("Norm %d: restored stream %v, want %v", i, got, wantNorm[i])
		}
	}
}
