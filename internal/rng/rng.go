// Package rng provides a small, deterministic pseudo-random number
// generator used throughout medsplit so that experiments are exactly
// reproducible across runs and platforms.
//
// The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) — a
// 64-bit state generator with a full 2^64 period and excellent statistical
// quality for simulation workloads. It is intentionally not cryptographic:
// it seeds model weights, synthetic datasets and shard assignments, none of
// which need secrecy, and it is an order of magnitude faster than
// crypto/rand.
package rng

import "math"

// RNG is a deterministic SplitMix64 pseudo-random number generator.
// The zero value is a valid generator seeded with 0; prefer New so the
// seed is explicit.
//
// RNG is not safe for concurrent use; give each goroutine its own
// generator (see Split).
type RNG struct {
	state uint64

	// cachedNorm holds a spare Gaussian variate produced by the
	// Box-Muller transform in Norm, which generates two at a time.
	cachedNorm    float64
	hasCachedNorm bool
}

// New returns a generator seeded with seed. Two generators built from the
// same seed produce identical streams.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Snapshot is the full serializable state of an RNG: restoring it
// resumes the stream exactly where the capture left off, including the
// spare Box-Muller variate. Checkpoint/restore of training sessions
// depends on this being complete — a missing field would silently
// desynchronize a resumed run from its uninterrupted twin.
type Snapshot struct {
	State         uint64
	CachedNorm    float64
	HasCachedNorm bool
}

// Snapshot captures the generator's current state.
func (r *RNG) Snapshot() Snapshot {
	return Snapshot{State: r.state, CachedNorm: r.cachedNorm, HasCachedNorm: r.hasCachedNorm}
}

// Restore overwrites the generator's state with a snapshot.
func (r *RNG) Restore(s Snapshot) {
	r.state = s.State
	r.cachedNorm = s.CachedNorm
	r.hasCachedNorm = s.HasCachedNorm
}

// Split derives an independent generator from r's current state. The
// derived stream is decorrelated from the parent by mixing in a large odd
// constant, so parent and child can be used side by side.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, mirroring
// math/rand's contract so misuse fails loudly during development.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method gives an unbiased value
	// without the modulo bias of Uint64() % n.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32

	t := aLo * bLo
	lo32 := t & mask32
	carry := t >> 32

	t = aHi*bLo + carry
	mid := t & mask32
	hi = t >> 32

	t = aLo*bHi + mid
	hi += t >> 32

	lo = t<<32 | lo32
	hi += aHi * bHi
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits → uniform double in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Norm returns a standard normal variate (mean 0, stddev 1) via the
// Box-Muller transform.
func (r *RNG) Norm() float64 {
	if r.hasCachedNorm {
		r.hasCachedNorm = false
		return r.cachedNorm
	}
	var u float64
	for u == 0 { // avoid log(0)
		u = r.Float64()
	}
	v := r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.cachedNorm = mag * math.Sin(2*math.Pi*v)
	r.hasCachedNorm = true
	return mag * math.Cos(2*math.Pi*v)
}

// NormFloat32 returns a standard normal variate as float32.
func (r *RNG) NormFloat32() float32 {
	return float32(r.Norm())
}

// Perm returns a pseudo-random permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p in place.
func (r *RNG) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Dirichlet fills out with a sample from a symmetric Dirichlet
// distribution with concentration alpha over len(out) categories. It is
// used to draw non-IID label distributions across platforms. Smaller
// alpha → more skew. It panics if alpha <= 0 or len(out) == 0.
func (r *RNG) Dirichlet(alpha float64, out []float64) {
	if alpha <= 0 {
		panic("rng: Dirichlet called with alpha <= 0")
	}
	if len(out) == 0 {
		panic("rng: Dirichlet called with empty output")
	}
	var sum float64
	for i := range out {
		g := r.gamma(alpha)
		out[i] = g
		sum += g
	}
	if sum == 0 {
		// Degenerate draw (possible for very small alpha): fall back
		// to a single random category to keep probabilities valid.
		out[r.Intn(len(out))] = 1
		return
	}
	for i := range out {
		out[i] /= sum
	}
}

// gamma samples Gamma(shape, 1) via Marsaglia & Tsang's method, with the
// standard shape<1 boost.
func (r *RNG) gamma(shape float64) float64 {
	if shape < 1 {
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
