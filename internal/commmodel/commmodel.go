// Package commmodel computes exact communication volumes analytically
// from architecture shape specs (internal/models). The paper's Fig. 4
// reports gigabytes moved while training full-size VGG and ResNet on
// CIFAR-10/100 — training those models is out of scope for a single-core
// reproduction, but the bytes each scheme moves are a pure function of
// tensor shapes, message framing and the round structure, all of which
// this repo pins down exactly. The analytic numbers therefore use the
// same wire-format arithmetic as the measured experiments.
//
// Accounting matches the runtime protocols except in one documented
// detail: model/gradient payloads are treated as a single flat tensor
// rather than per-layer tensors, under-counting framing by ~20 bytes per
// layer (<0.01% of a VGG-scale payload).
package commmodel

import (
	"fmt"

	"medsplit/internal/metrics"
	"medsplit/internal/models"
	"medsplit/internal/wire"
)

// tensorMsgBytes returns the on-the-wire size of one message carrying a
// single tensor of the given shape.
func tensorMsgBytes(shape ...int) int64 {
	return int64(wire.WireSizeFor(wire.TensorsPayloadSize(shape)))
}

// SplitRoundBytes returns the bytes all platforms move in one
// synchronous round of the split protocol: per platform, activations up,
// logits down, loss gradients up, cut gradients down (or the 2-message
// label-sharing variant). cutAct is the per-sample activation volume at
// the cut (spec.CutActivations); classes the logits width.
func SplitRoundBytes(cutAct, classes int, batches []int, labelShare bool) int64 {
	var total int64
	for _, s := range batches {
		if s <= 0 {
			panic(fmt.Sprintf("commmodel: batch size %d", s))
		}
		up := tensorMsgBytes(s, cutAct)
		down := tensorMsgBytes(s, cutAct) // cut gradients mirror activations
		if labelShare {
			// Up: activations message plus a labels message (5-byte
			// payload header + 4 bytes per label). Down: one message
			// carrying the cut gradient and the scalar loss.
			labels := int64(wire.WireSizeFor(5 + 4*s))
			down = int64(wire.WireSizeFor(wire.TensorsPayloadSize([]int{s, cutAct}, []int{})))
			total += up + labels + down
			continue
		}
		logits := tensorMsgBytes(s, classes)
		lossGrad := tensorMsgBytes(s, classes)
		total += up + logits + lossGrad + down
	}
	return total
}

// ParamExchangeRoundBytes returns the bytes all workers move in one
// round of a full-model parameter-exchange scheme (Large-Scale
// Synchronous SGD or FedAvg): per worker, the model down and an
// equally-sized payload (gradients or updated weights, plus a scalar
// trailer) back up.
func ParamExchangeRoundBytes(params, workers int) int64 {
	if params <= 0 || workers <= 0 {
		panic(fmt.Sprintf("commmodel: params %d workers %d", params, workers))
	}
	down := tensorMsgBytes(params)
	up := int64(wire.WireSizeFor(wire.TensorsPayloadSize([]int{params}, []int{})))
	return int64(workers) * (down + up)
}

// RoundsPerEpoch returns how many synchronous rounds one pass over a
// dataset of n samples takes when k platforms each contribute a batch of
// size s per round.
func RoundsPerEpoch(n, k, s int) int {
	if n <= 0 || k <= 0 || s <= 0 {
		panic(fmt.Sprintf("commmodel: n %d k %d s %d", n, k, s))
	}
	per := k * s
	return (n + per - 1) / per
}

// Fig4Config parameterizes the analytic reproduction of the paper's
// Fig. 4 (communication bandwidth evaluation).
type Fig4Config struct {
	// Platforms is the number of geo-distributed platforms (k).
	Platforms int
	// Batch is the per-platform minibatch size s_k.
	Batch int
	// DatasetSize is the training-corpus size (50 000 for CIFAR).
	DatasetSize int
	// Epochs is how many passes over the corpus to account.
	Epochs float64
}

// Fig4Row is one bar pair of Fig. 4.
type Fig4Row struct {
	Model      string
	Dataset    string
	SplitBytes int64
	SGDBytes   int64
	Ratio      float64 // SGDBytes / SplitBytes
}

// Fig4Analytic computes the four Fig. 4 configurations ({VGG, ResNet} ×
// {CIFAR-10, CIFAR-100}) under cfg, comparing the split framework
// against Large-Scale Synchronous SGD at the same round schedule.
func Fig4Analytic(cfg Fig4Config) []Fig4Row {
	if cfg.Platforms <= 0 || cfg.Batch <= 0 || cfg.DatasetSize <= 0 || cfg.Epochs <= 0 {
		panic(fmt.Sprintf("commmodel: bad Fig4Config %+v", cfg))
	}
	specs := []struct {
		name string
		spec func(classes int) models.Spec
	}{
		{"VGG-16", models.VGG16Spec},
		{"ResNet-18", models.ResNet18Spec},
	}
	datasets := []struct {
		name    string
		classes int
	}{
		{"CIFAR-10", 10},
		{"CIFAR-100", 100},
	}
	rounds := float64(RoundsPerEpoch(cfg.DatasetSize, cfg.Platforms, cfg.Batch)) * cfg.Epochs
	batches := make([]int, cfg.Platforms)
	for i := range batches {
		batches[i] = cfg.Batch
	}
	var rows []Fig4Row
	for _, s := range specs {
		for _, d := range datasets {
			spec := s.spec(d.classes)
			splitRound := SplitRoundBytes(spec.CutActivations(spec.FirstHiddenCut), d.classes, batches, false)
			sgdRound := ParamExchangeRoundBytes(spec.TotalParams(), cfg.Platforms)
			row := Fig4Row{
				Model:      s.name,
				Dataset:    d.name,
				SplitBytes: int64(float64(splitRound) * rounds),
				SGDBytes:   int64(float64(sgdRound) * rounds),
			}
			row.Ratio = float64(row.SGDBytes) / float64(row.SplitBytes)
			rows = append(rows, row)
		}
	}
	return rows
}

// Fig4Table renders the analytic rows as the figure's table.
func Fig4Table(cfg Fig4Config, rows []Fig4Row) *metrics.Table {
	t := &metrics.Table{
		Title: fmt.Sprintf("Fig. 4 (analytic, paper-scale): communication for %.2f epoch(s), %d platforms, batch %d",
			cfg.Epochs, cfg.Platforms, cfg.Batch),
		Headers: []string{"model", "dataset", "split (proposed)", "large-scale SGD", "SGD/split"},
	}
	for _, r := range rows {
		t.AddRow(r.Model, r.Dataset,
			metrics.FormatBytes(r.SplitBytes),
			metrics.FormatBytes(r.SGDBytes),
			fmt.Sprintf("%.2fx", r.Ratio))
	}
	return t
}

// CutSweepRow reports the communication consequence of moving the cut
// deeper into the network — the ablation behind the paper's choice of
// cutting after the first hidden layer.
type CutSweepRow struct {
	CutIndex   int
	LayerName  string
	ActPerSamp int
	SplitBytes int64 // per round, all platforms
}

// CutSweep computes per-round split traffic for every feasible cut of a
// spec. Deeper cuts reduce wire volume whenever the architecture
// shrinks activations with depth, but move more computation (and more
// layers) onto the privacy-critical platform.
func CutSweep(spec models.Spec, classes int, batches []int) []CutSweepRow {
	var rows []CutSweepRow
	for cut := 1; cut <= len(spec.Layers); cut++ {
		act := spec.CutActivations(cut)
		if act == 0 {
			continue // bookkeeping rows (e.g. projection shortcuts)
		}
		rows = append(rows, CutSweepRow{
			CutIndex:   cut,
			LayerName:  spec.Layers[cut-1].Name,
			ActPerSamp: act,
			SplitBytes: SplitRoundBytes(act, classes, batches, false),
		})
	}
	return rows
}
