package commmodel

import (
	"strings"
	"testing"

	"medsplit/internal/models"
)

func TestSplitRoundBytesMatchesHandComputation(t *testing.T) {
	// One platform, batch 2, cut activations 3, 4 classes, label-private.
	// Each tensor message: 20B header + 3B payload header (kind byte +
	// uint16 tensor count) + tensor encoding (1 + 4*rank + 4*elems).
	const hdr, pl = 20, 3
	actMsg := hdr + pl + 1 + 8 + 4*2*3
	logitMsg := hdr + pl + 1 + 8 + 4*2*4
	want := int64(2*actMsg + 2*logitMsg)
	got := SplitRoundBytes(3, 4, []int{2}, false)
	if got != want {
		t.Fatalf("SplitRoundBytes = %d, want %d", got, want)
	}
}

func TestSplitRoundBytesScalesWithBatchAndPlatforms(t *testing.T) {
	one := SplitRoundBytes(100, 10, []int{8}, false)
	two := SplitRoundBytes(100, 10, []int{8, 8}, false)
	if two != 2*one {
		t.Fatalf("two identical platforms: %d, want %d", two, 2*one)
	}
	big := SplitRoundBytes(100, 10, []int{16}, false)
	if big <= one {
		t.Fatal("doubling batch must increase traffic")
	}
}

func TestLabelSharingHalvesMessagesNotPayload(t *testing.T) {
	private := SplitRoundBytes(1000, 10, []int{32}, false)
	sharing := SplitRoundBytes(1000, 10, []int{32}, true)
	// Label sharing drops the logits+lossgrad round trip (2×32×10
	// floats) and adds 32 labels — it must be cheaper.
	if sharing >= private {
		t.Fatalf("label sharing %d >= label private %d", sharing, private)
	}
}

func TestParamExchangeRoundBytes(t *testing.T) {
	one := ParamExchangeRoundBytes(1_000_000, 1)
	// Model down + grads up ≈ 2 × 4MB.
	if one < 8_000_000 || one > 8_001_000 {
		t.Fatalf("1M params round = %d, want ~8MB", one)
	}
	four := ParamExchangeRoundBytes(1_000_000, 4)
	if four != 4*one {
		t.Fatalf("4 workers: %d, want %d", four, 4*one)
	}
}

func TestRoundsPerEpoch(t *testing.T) {
	if got := RoundsPerEpoch(50000, 4, 125); got != 100 {
		t.Fatalf("RoundsPerEpoch = %d, want 100", got)
	}
	if got := RoundsPerEpoch(10, 3, 3); got != 2 {
		t.Fatalf("ceil division: %d, want 2", got)
	}
}

// The headline property of the paper's Fig. 4: the split framework moves
// fewer bytes than large-scale synchronous SGD on every model/dataset
// combination, with ratios in the 2–4× band the paper reports
// (VGG 2.5×, ResNet 3×).
func TestFig4AnalyticReproducesShape(t *testing.T) {
	rows := Fig4Analytic(Fig4Config{Platforms: 4, Batch: 64, DatasetSize: 50000, Epochs: 1})
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.SplitBytes >= r.SGDBytes {
			t.Errorf("%s/%s: split %d >= sgd %d — proposed framework must win",
				r.Model, r.Dataset, r.SplitBytes, r.SGDBytes)
		}
		if r.Ratio < 1.5 || r.Ratio > 6 {
			t.Errorf("%s/%s: ratio %.2f outside the plausible band", r.Model, r.Dataset, r.Ratio)
		}
	}
	// CIFAR-100 heads are bigger, so SGD pays slightly more while split
	// pays only a classes-width delta; both must register.
	if rows[0].SGDBytes >= rows[1].SGDBytes {
		t.Error("CIFAR-100 VGG must cost SGD more than CIFAR-10 (bigger head)")
	}
}

func TestFig4AnalyticScalesLinearlyWithEpochs(t *testing.T) {
	one := Fig4Analytic(Fig4Config{Platforms: 2, Batch: 32, DatasetSize: 10000, Epochs: 1})
	two := Fig4Analytic(Fig4Config{Platforms: 2, Batch: 32, DatasetSize: 10000, Epochs: 2})
	for i := range one {
		if two[i].SplitBytes != 2*one[i].SplitBytes {
			t.Fatalf("row %d: epochs must scale bytes linearly", i)
		}
	}
}

func TestFig4Table(t *testing.T) {
	cfg := Fig4Config{Platforms: 4, Batch: 64, DatasetSize: 50000, Epochs: 1}
	tbl := Fig4Table(cfg, Fig4Analytic(cfg))
	out := tbl.String()
	for _, want := range []string{"VGG-16", "ResNet-18", "CIFAR-100", "split", "SGD"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestCutSweepMonotoneAtPoolBoundaries(t *testing.T) {
	spec := models.VGG16Spec(10)
	rows := CutSweep(spec, 10, []int{32, 32})
	if len(rows) == 0 {
		t.Fatal("empty sweep")
	}
	// The paper's cut (first hidden layer) is the first row pair; deeper
	// cuts after pooling stages must shrink traffic.
	byName := map[string]int64{}
	for _, r := range rows {
		byName[r.LayerName] = r.SplitBytes
	}
	if byName["pool5"] >= byName["conv1"] {
		t.Fatalf("pool5 cut (%d) should beat conv1 cut (%d)", byName["pool5"], byName["conv1"])
	}
	// Sweep must cover the whole network.
	if rows[len(rows)-1].LayerName != "head" {
		t.Fatalf("sweep ends at %q", rows[len(rows)-1].LayerName)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	assertPanics(t, "bad batch", func() { SplitRoundBytes(10, 10, []int{0}, false) })
	assertPanics(t, "bad params", func() { ParamExchangeRoundBytes(0, 1) })
	assertPanics(t, "bad epoch args", func() { RoundsPerEpoch(0, 1, 1) })
	assertPanics(t, "bad config", func() { Fig4Analytic(Fig4Config{}) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}
