package experiment

import (
	"os"
	"path/filepath"
	"testing"

	"medsplit/internal/transport/testutil"
)

// Replication must be an observer: a run with warm followers streaming
// every step lands on exactly the weights of the same run without
// them, on the local transport and over the simulated WAN.
func TestReplicatedTransparent(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	topo, regions := matrixTopology()

	ref, err := RunSplit(matrixBase(topo, regions))
	if err != nil {
		t.Fatal(err)
	}
	for _, wan := range []bool{false, true} {
		name := "local"
		if wan {
			name = "simwan"
		}
		t.Run(name, func(t *testing.T) {
			cfg := matrixBase(topo, regions)
			cfg.Replicas = 1
			cfg.SimWAN = wan
			res, err := RunSplit(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.WeightDigest != ref.WeightDigest {
				t.Fatalf("replication perturbed training: digest %#x vs %#x",
					res.WeightDigest, ref.WeightDigest)
			}
		})
	}
}

// The headline failover property, end to end through the experiment
// layer: the leader is killed mid-round over the simulated WAN, a warm
// follower promotes and finishes the session, and the final weights
// are bit-identical to an undisturbed pipe-transport run. Swept over
// kill round, replica count, scheduling mode and label sharing.
func TestReplicatedFailoverDigest(t *testing.T) {
	if testing.Short() {
		t.Skip("failover sweep is slow")
	}
	testutil.VerifyNoLeaks(t)
	topo, regions := matrixTopology()

	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"kill-r2", func(c *Config) { c.KillLeaderAt = 2 }},
		{"kill-r4-two-replicas", func(c *Config) { c.KillLeaderAt = 4; c.Replicas = 2 }},
		{"kill-r3-pipelined-depth1", func(c *Config) {
			c.KillLeaderAt = 3
			c.Pipelined = true
			c.PipelineDepth = 1
		}},
		{"kill-r3-label-sharing", func(c *Config) { c.KillLeaderAt = 3; c.LabelSharing = true }},
		{"kill-r2-l1sync", func(c *Config) { c.KillLeaderAt = 2; c.L1SyncEvery = 2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// The undisturbed reference: same schedule, no WAN, no
			// replication, no kill.
			refCfg := matrixBase(topo, regions)
			tc.mutate(&refCfg)
			refCfg.KillLeaderAt = 0
			refCfg.Replicas = 0
			ref, err := RunSplit(refCfg)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}

			cfg := matrixBase(topo, regions)
			cfg.Replicas = 1
			cfg.SimWAN = true
			cfg.SimJitter = 0.2
			tc.mutate(&cfg)
			res, err := RunSplit(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.WeightDigest != ref.WeightDigest {
				t.Fatalf("failover diverged from the undisturbed run: digest %#x vs %#x",
					res.WeightDigest, ref.WeightDigest)
			}
			if res.FinalAccuracy != ref.FinalAccuracy {
				t.Fatalf("accuracy diverged: %v vs %v", res.FinalAccuracy, ref.FinalAccuracy)
			}
		})
	}
}

// A user-supplied WALDir keeps the logs: after a killed-leader run the
// leader and follower WAL directories must both hold segments.
func TestReplicatedWALDirKept(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	topo, regions := matrixTopology()
	dir := t.TempDir()

	cfg := matrixBase(topo, regions)
	cfg.Replicas = 1
	cfg.SimWAN = true
	cfg.KillLeaderAt = 2
	cfg.WALDir = dir
	if _, err := RunSplit(cfg); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"leader", "follower-0"} {
		ents, err := os.ReadDir(filepath.Join(dir, sub))
		if err != nil {
			t.Fatalf("%s WAL directory: %v", sub, err)
		}
		if len(ents) == 0 {
			t.Fatalf("%s WAL directory is empty", sub)
		}
	}
}

// Config validation for the replication surface.
func TestReplicatedConfigValidation(t *testing.T) {
	topo, regions := matrixTopology()
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"negative replicas", func(c *Config) { c.Replicas = -1 }},
		{"replicas with concat", func(c *Config) { c.Replicas = 1; c.ConcatRounds = true }},
		{"replicas with deep pipeline", func(c *Config) {
			c.Replicas = 1
			c.Pipelined = true
			c.PipelineDepth = 2
		}},
		{"waldir without replicas", func(c *Config) { c.WALDir = "somewhere" }},
		{"kill without replicas", func(c *Config) { c.SimWAN = true; c.KillLeaderAt = 2 }},
		{"kill without simwan", func(c *Config) { c.Replicas = 1; c.KillLeaderAt = 2 }},
		{"kill at round zero", func(c *Config) {
			c.Replicas = 1
			c.SimWAN = true
			c.KillLeaderAt = -1
		}},
		{"kill past last round", func(c *Config) {
			c.Replicas = 1
			c.SimWAN = true
			c.KillLeaderAt = 6
		}},
		{"kill with rejoin", func(c *Config) {
			c.Replicas = 1
			c.SimWAN = true
			c.KillLeaderAt = 2
			c.SimRejoin = "wait"
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := matrixBase(topo, regions)
			tc.mutate(&cfg)
			if _, err := RunSplit(cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

// A killed leader with a follower behind it must still report per-round
// stats and a virtual timeline, and the run must be repeatable: the
// same failover config twice lands on the same digest.
func TestReplicatedFailoverDeterministic(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	topo, regions := matrixTopology()
	run := func() *Result {
		cfg := matrixBase(topo, regions)
		cfg.Replicas = 1
		cfg.SimWAN = true
		cfg.KillLeaderAt = 3
		res, err := RunSplit(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.WeightDigest != b.WeightDigest {
		t.Fatalf("failover digests diverged across identical runs: %#x vs %#x",
			a.WeightDigest, b.WeightDigest)
	}
	if a.SimElapsed <= 0 {
		t.Fatal("failover run reported no virtual elapsed time")
	}
}
