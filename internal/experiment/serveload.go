package experiment

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"medsplit/internal/geonet"
	"medsplit/internal/models"
	"medsplit/internal/nn"
	"medsplit/internal/rng"
	"medsplit/internal/serve"
	"medsplit/internal/simnet"
	"medsplit/internal/tensor"
	"medsplit/internal/transport"
)

// ServeLoadConfig describes one multi-tenant serving load run: a
// tenant × platform matrix of inference clients driving a single
// serving process over the simulated WAN.
type ServeLoadConfig struct {
	// Tenants is how many tenant models the server multiplexes
	// (default 2). Platform k belongs to tenant k mod Tenants.
	Tenants int
	// Platforms is the number of clinics issuing requests (default 4).
	Platforms int
	// RequestsPerPlatform is each client's request count (default 8).
	RequestsPerPlatform int
	// RequestRows is the rows (samples) per request (default 2).
	RequestRows int
	// BatchMax / FlushEvery configure the server's dynamic batcher
	// (see serve.InferConfig; defaults 8 rows / 2ms).
	BatchMax   int
	FlushEvery time.Duration
	// ComputeSlots is the server's shared compute budget (default 2).
	ComputeSlots int
	// Arch / Classes / Width pick the per-tenant model (defaults
	// ArchMLP / 10 / 8; every tenant gets the same architecture at
	// different seeded weights).
	Arch    Arch
	Classes int
	Width   int
	// Seed makes the run — topology, weights, inputs — reproducible.
	Seed uint64
	// SimJitter adds seeded per-message jitter to the simulated WAN.
	SimJitter float64
	// InferPrecision is applied to every tenant's serving view
	// (serve.TenantConfig.InferPrecision): "" or "f32" serves the
	// bit-identical default, "f16"/"int8" the reduced-precision paths.
	InferPrecision string
}

func (c ServeLoadConfig) withDefaults() ServeLoadConfig {
	if c.Tenants == 0 {
		c.Tenants = 2
	}
	if c.Platforms == 0 {
		c.Platforms = 4
	}
	if c.RequestsPerPlatform == 0 {
		c.RequestsPerPlatform = 8
	}
	if c.RequestRows == 0 {
		c.RequestRows = 2
	}
	if c.BatchMax == 0 {
		c.BatchMax = 8
	}
	if c.FlushEvery == 0 {
		c.FlushEvery = 2 * time.Millisecond
	}
	if c.ComputeSlots == 0 {
		c.ComputeSlots = 2
	}
	if c.Arch == "" {
		c.Arch = ArchMLP
	}
	if c.Classes == 0 {
		c.Classes = 10
	}
	if c.Width == 0 {
		c.Width = 8
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// tenantModelConfig is the deterministic model recipe for one tenant:
// same architecture across tenants, distinct seeded weights. Clients
// and the server build from the same recipe, so platform fronts match
// the served back half exactly — the property split inference depends
// on.
func (c ServeLoadConfig) tenantModelConfig(tenantIdx int) Config {
	return Config{
		Arch:    c.Arch,
		Classes: c.Classes,
		Width:   c.Width,
		Seed:    c.Seed + 101*uint64(tenantIdx+1),
	}
}

// RunServeLoad drives a multi-tenant serving process with
// cfg.Platforms concurrent clients over the simulated geo-WAN and
// reports client-observed latency percentiles and throughput. Every
// response is checked for the expected logits shape, so the run
// doubles as an end-to-end correctness pass over the serving tier.
func RunServeLoad(cfg ServeLoadConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Tenants > cfg.Platforms {
		return nil, fmt.Errorf("experiment: %d tenants need at least as many platforms, have %d", cfg.Tenants, cfg.Platforms)
	}
	topo, regions := geonet.SyntheticClinics(cfg.Platforms, cfg.Seed)
	wan, pairs, err := simnet.FromTopology(topo, regions, simnet.Options{
		Seed:   cfg.Seed + 0x5E21E,
		Jitter: cfg.SimJitter,
	})
	if err != nil {
		return nil, err
	}

	tenants := make([]serve.TenantConfig, cfg.Tenants)
	for i := range tenants {
		mcfg := cfg.tenantModelConfig(i)
		tenants[i] = serve.TenantConfig{
			Name: fmt.Sprintf("tenant-%d", i),
			BuildBack: func() (*nn.Sequential, error) {
				m, err := BuildModel(mcfg)
				if err != nil {
					return nil, err
				}
				_, back, err := models.Split(m.Net, m.DefaultCut)
				return back, err
			},
			InferPrecision: cfg.InferPrecision,
		}
	}
	mgr, err := serve.NewManager(serve.Config{Tenants: tenants, ComputeSlots: cfg.ComputeSlots})
	if err != nil {
		return nil, err
	}
	defer mgr.Close()
	is, err := serve.NewInferenceServer(mgr, serve.InferConfig{
		BatchMax:   cfg.BatchMax,
		FlushEvery: cfg.FlushEvery,
	})
	if err != nil {
		return nil, err
	}
	defer is.Close()

	var serverWG sync.WaitGroup
	latencies := make([][]time.Duration, cfg.Platforms)
	errs := make([]error, cfg.Platforms)
	var clientWG sync.WaitGroup
	start := time.Now()
	for k := 0; k < cfg.Platforms; k++ {
		serverWG.Add(1)
		go func(k int) {
			defer serverWG.Done()
			_ = is.HandleConn(pairs[k].Server)
		}(k)
		clientWG.Add(1)
		go func(k int) {
			defer clientWG.Done()
			errs[k] = runServeClient(cfg, k, pairs[k].Platform, &latencies[k])
		}(k)
	}
	clientWG.Wait()
	elapsed := time.Since(start)
	serverWG.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}

	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := &Result{
		Scheme:        "serve (split inference)",
		InferRequests: len(all),
		InferBatches:  is.Stats().Batches,
		SimElapsed:    wan.Elapsed(),
	}
	if len(all) > 0 {
		res.InferP50 = all[(len(all)-1)*50/100]
		res.InferP99 = all[(len(all)-1)*99/100]
	}
	if elapsed > 0 {
		res.InferReqPerSec = float64(len(all)) / elapsed.Seconds()
	}
	return res, nil
}

// runServeClient is one platform's load loop: build the tenant's front
// half, issue the configured requests with deterministic inputs, check
// every response shape, record client-observed latency.
func runServeClient(cfg ServeLoadConfig, k int, conn transport.Conn, out *[]time.Duration) error {
	tenantIdx := k % cfg.Tenants
	mcfg := cfg.tenantModelConfig(tenantIdx)
	m, err := BuildModel(mcfg)
	if err != nil {
		return err
	}
	front, _, err := models.Split(m.Net, m.DefaultCut)
	if err != nil {
		return err
	}
	client := serve.NewClient(conn, front, fmt.Sprintf("tenant-%d", tenantIdx), uint32(k))
	defer client.Close()
	r := rng.New(cfg.Seed + 0xC11E47 + uint64(k))
	shape := append([]int{cfg.RequestRows}, m.InputShape...)
	x := tensor.New(shape...)
	for i := 0; i < cfg.RequestsPerPlatform; i++ {
		data := x.Data()
		for j := range data {
			data[j] = r.NormFloat32()
		}
		t0 := time.Now()
		y, err := client.Infer(x)
		lat := time.Since(t0)
		if err != nil {
			return fmt.Errorf("experiment: platform %d request %d: %w", k, i, err)
		}
		if y.Dim(0) != cfg.RequestRows || y.Dim(1) != cfg.Classes {
			return fmt.Errorf("experiment: platform %d: logits shape %v, want [%d %d]",
				k, y.Shape(), cfg.RequestRows, cfg.Classes)
		}
		*out = append(*out, lat)
	}
	return nil
}
