package experiment

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sync"
	"time"

	"medsplit/internal/geonet"
	"medsplit/internal/models"
	"medsplit/internal/nn"
	"medsplit/internal/rng"
	"medsplit/internal/serve"
	"medsplit/internal/simnet"
	"medsplit/internal/tensor"
	"medsplit/internal/transport"
)

// ServeChaosConfig scripts one chaos run over the serving tier: the
// same tenant × platform load matrix as RunServeLoad, plus a fault
// script and the client resilience policy that must absorb it.
type ServeChaosConfig struct {
	// Load is the underlying traffic matrix (tenants, platforms,
	// requests, batching, model recipe). Seed also drives the fault
	// placement helper ChaosFaultScript.
	Load ServeLoadConfig
	// Faults is the simnet fault script for the chaos run. The
	// fault-free reference run never sees it.
	Faults []simnet.Fault
	// Timeout / MaxAttempts / Backoff / HedgeAfter configure each
	// client's serve.RetryPolicy (defaults 250ms / 4 / 1ms / off).
	Timeout     time.Duration
	MaxAttempts int
	Backoff     time.Duration
	HedgeAfter  time.Duration
}

func (c ServeChaosConfig) withDefaults() ServeChaosConfig {
	c.Load = c.Load.withDefaults()
	if c.Timeout == 0 {
		c.Timeout = 250 * time.Millisecond
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 4
	}
	if c.Backoff == 0 {
		c.Backoff = time.Millisecond
	}
	return c
}

// ServeChaosResult is the verdict of one chaos run, compared against
// its fault-free twin.
type ServeChaosResult struct {
	Requests  int // logical requests issued across all platforms
	Succeeded int // answered with logits
	Failed    int // failed with a typed, classified error after the retry budget
	// Mismatched counts successful responses whose logits bytes
	// differed from the fault-free run. RunServeChaos returns an error
	// when it is nonzero; it is reported for completeness.
	Mismatched int

	// Client-side resilience totals across all platforms.
	Retries  int64
	Hedges   int64
	Redials  int64
	Timeouts int64
	Remote   int64

	// Server is the serving tier's own view of the chaos run.
	Server serve.InferStats
	// SimElapsed is the chaos run's virtual WAN time.
	SimElapsed time.Duration
}

// ChaosFaultScript builds a deterministic serving-phase fault mix for
// a platforms × requests load: a seeded rotation of message drops,
// virtual delay spikes, real-time server stalls and mid-stream severs
// spread across roughly every third platform. Stalls and the delays
// that must outlive a client timeout scale with the given timeout.
func ChaosFaultScript(platforms, requests int, timeout time.Duration, seed uint64) []simnet.Fault {
	r := rng.New(seed ^ 0xC4A05)
	var faults []simnet.Fault
	for k := 0; k < platforms; k += 3 {
		round := 1 + r.Intn(requests) // attempt seqs start at 1
		dir := simnet.DirUp
		if r.Intn(2) == 1 {
			dir = simnet.DirDown
		}
		switch k / 3 % 4 {
		case 0: // lose one message on a healthy link
			faults = append(faults, simnet.Fault{
				Platform: k, Round: round, Dir: dir, Kind: simnet.FaultDrop,
			})
		case 1: // virtual latency spike
			faults = append(faults, simnet.Fault{
				Platform: k, Round: round, Dir: dir, Kind: simnet.FaultDelaySpike,
				Delay: 500 * time.Millisecond,
			})
		case 2: // real-time server stall, long enough to trip the timeout
			faults = append(faults, simnet.Fault{
				Platform: k, Round: round, Dir: simnet.DirDown, Kind: simnet.FaultStall,
				Hold: timeout + timeout/2,
			})
		case 3: // connection severed mid-stream
			faults = append(faults, simnet.Fault{
				Platform: k, Round: round, Dir: dir, Kind: simnet.FaultSever,
			})
		}
	}
	return faults
}

// RunServeChaos proves the serving tier's failure contract: it drives
// the load matrix twice over the simulated WAN — once fault-free, once
// under cfg.Faults with the full client resilience stack (timeouts,
// retries, failover redials, optional hedging) — and checks that in
// the chaos run every logical request either succeeds with logits
// bit-identical to the fault-free run or fails fast with a typed,
// classified error. Any untyped failure, any byte mismatch, or any
// fault-free-run failure is returned as an error.
func RunServeChaos(cfg ServeChaosConfig) (*ServeChaosResult, error) {
	cfg = cfg.withDefaults()
	lc := cfg.Load
	if lc.Tenants > lc.Platforms {
		return nil, fmt.Errorf("experiment: %d tenants need at least as many platforms, have %d", lc.Tenants, lc.Platforms)
	}

	// Reference run: no faults, no policy. Every request must succeed;
	// its digests are the ground truth for the chaos run.
	ref, _, _, err := runServeMatrix(lc, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("experiment: fault-free reference run: %w", err)
	}
	for k := range ref {
		for i, out := range ref[k] {
			if out.err != nil {
				return nil, fmt.Errorf("experiment: fault-free reference run: platform %d request %d: %w", k, i, out.err)
			}
		}
	}

	policy := &serve.RetryPolicy{
		Timeout:     cfg.Timeout,
		MaxAttempts: cfg.MaxAttempts,
		Backoff:     cfg.Backoff,
		HedgeAfter:  cfg.HedgeAfter,
	}
	chaos, stats, elapsed, err := runServeMatrix(lc, cfg.Faults, policy)
	if err != nil {
		return nil, err
	}

	res := &ServeChaosResult{
		Requests:   lc.Platforms * lc.RequestsPerPlatform,
		Server:     stats.server,
		SimElapsed: elapsed,
	}
	for _, cs := range stats.clients {
		res.Retries += cs.Retries
		res.Hedges += cs.Hedges
		res.Redials += cs.Redials
		res.Timeouts += cs.Timeouts
		res.Remote += cs.Remote
	}
	var firstErr error
	for k := range chaos {
		for i, out := range chaos[k] {
			switch {
			case out.err == nil && out.digest == ref[k][i].digest:
				res.Succeeded++
			case out.err == nil:
				res.Mismatched++
				if firstErr == nil {
					firstErr = fmt.Errorf("experiment: platform %d request %d: logits diverged from fault-free run (digest %x != %x)",
						k, i, out.digest, ref[k][i].digest)
				}
			case typedServeError(out.err):
				res.Failed++
			default:
				if firstErr == nil {
					firstErr = fmt.Errorf("experiment: platform %d request %d: untyped failure: %w", k, i, out.err)
				}
			}
		}
	}
	return res, firstErr
}

// typedServeError reports whether err is part of the serving tier's
// declared failure vocabulary: a structured remote rejection, an
// attempt timeout, or a connection-level error the transport
// classifies. Anything else is a contract violation the chaos run
// must surface.
func typedServeError(err error) bool {
	var remote *serve.RemoteError
	return errors.As(err, &remote) ||
		errors.Is(err, serve.ErrAttemptTimeout) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrClosedPipe) ||
		errors.Is(err, transport.ErrClosed)
}

// requestOutcome is one logical request's result in a matrix run.
type requestOutcome struct {
	digest uint64
	err    error
}

// matrixStats aggregates one run's client and server counters.
type matrixStats struct {
	clients []serve.ClientStats
	server  serve.InferStats
}

// runServeMatrix drives the tenant × platform load once over a fresh
// simulated WAN, applying the given fault script and client policy
// (both may be nil for a clean reference run), and returns per-request
// outcomes. Request inputs depend only on (platform, request index),
// never on retry behavior, so two runs of the same load are
// byte-comparable.
func runServeMatrix(lc ServeLoadConfig, faults []simnet.Fault, policy *serve.RetryPolicy) ([][]requestOutcome, *matrixStats, time.Duration, error) {
	topo, regions := geonet.SyntheticClinics(lc.Platforms, lc.Seed)
	wan, pairs, err := simnet.FromTopology(topo, regions, simnet.Options{
		Seed:   lc.Seed + 0x5E21E,
		Jitter: lc.SimJitter,
		Faults: faults,
	})
	if err != nil {
		return nil, nil, 0, err
	}

	tenants := make([]serve.TenantConfig, lc.Tenants)
	for i := range tenants {
		mcfg := lc.tenantModelConfig(i)
		tenants[i] = serve.TenantConfig{
			Name: fmt.Sprintf("tenant-%d", i),
			BuildBack: func() (*nn.Sequential, error) {
				m, err := BuildModel(mcfg)
				if err != nil {
					return nil, err
				}
				_, back, err := models.Split(m.Net, m.DefaultCut)
				return back, err
			},
		}
	}
	mgr, err := serve.NewManager(serve.Config{Tenants: tenants, ComputeSlots: lc.ComputeSlots})
	if err != nil {
		return nil, nil, 0, err
	}
	defer mgr.Close()
	is, err := serve.NewInferenceServer(mgr, serve.InferConfig{
		BatchMax:   lc.BatchMax,
		FlushEvery: lc.FlushEvery,
	})
	if err != nil {
		return nil, nil, 0, err
	}
	defer is.Close()

	// serveConn tracks every server-side reader, including the ones
	// redials spawn mid-run, so the matrix never leaks a goroutine.
	var serverWG sync.WaitGroup
	serveConn := func(c transport.Conn) {
		serverWG.Add(1)
		go func() {
			defer serverWG.Done()
			_ = is.HandleConn(c)
		}()
	}

	outcomes := make([][]requestOutcome, lc.Platforms)
	stats := &matrixStats{clients: make([]serve.ClientStats, lc.Platforms)}
	fatal := make([]error, lc.Platforms)
	var clientWG sync.WaitGroup
	for k := 0; k < lc.Platforms; k++ {
		serveConn(pairs[k].Server)
		clientWG.Add(1)
		go func(k int) {
			defer clientWG.Done()
			fatal[k] = runChaosClient(lc, k, pairs[k].Platform, wan, policy, serveConn,
				&outcomes[k], &stats.clients[k])
			// A client that ended with its connection torn down leaves
			// the current segment's server reader blocked; severing the
			// segment (the replacement endpoints go unused) is what
			// guarantees every HandleConn goroutine unblocks. Harmless
			// after a clean Bye.
			_, _, _ = wan.Redial(k)
		}(k)
	}
	clientWG.Wait()
	serverWG.Wait()
	if err := errors.Join(fatal...); err != nil {
		return nil, nil, 0, err
	}
	stats.server = is.Stats()
	return outcomes, stats, wan.Elapsed(), nil
}

// runChaosClient is one platform's request loop. Per-request failures
// are recorded as outcomes, never returned: the run must prove the
// tier keeps serving around them. Only setup failures (model build)
// are fatal.
func runChaosClient(lc ServeLoadConfig, k int, conn transport.Conn, wan *simnet.Network,
	policy *serve.RetryPolicy, serveConn func(transport.Conn),
	out *[]requestOutcome, cs *serve.ClientStats) error {
	tenantIdx := k % lc.Tenants
	mcfg := lc.tenantModelConfig(tenantIdx)
	m, err := BuildModel(mcfg)
	if err != nil {
		return err
	}
	front, _, err := models.Split(m.Net, m.DefaultCut)
	if err != nil {
		return err
	}
	client := serve.NewClient(conn, front, fmt.Sprintf("tenant-%d", tenantIdx), uint32(k))
	defer client.Close()
	if policy != nil {
		p := *policy
		p.Seed = lc.Seed + 0xBACC0FF + uint64(k)
		client.SetPolicy(p)
		client.SetRedial(func() (transport.Conn, error) {
			serverEnd, platformEnd, err := wan.Redial(k)
			if err != nil {
				return nil, err
			}
			serveConn(serverEnd)
			return platformEnd, nil
		})
	}
	r := rng.New(lc.Seed + 0xC11E47 + uint64(k))
	shape := append([]int{lc.RequestRows}, m.InputShape...)
	x := tensor.New(shape...)
	for i := 0; i < lc.RequestsPerPlatform; i++ {
		// The input stream advances once per logical request no matter
		// how the previous one ended, so outcome i is byte-comparable
		// across runs with different fault scripts.
		data := x.Data()
		for j := range data {
			data[j] = r.NormFloat32()
		}
		y, err := client.Infer(x)
		if err != nil {
			*out = append(*out, requestOutcome{err: err})
			continue
		}
		if y.Dim(0) != lc.RequestRows || y.Dim(1) != lc.Classes {
			*out = append(*out, requestOutcome{err: fmt.Errorf("experiment: logits shape %v, want [%d %d]",
				y.Shape(), lc.RequestRows, lc.Classes)})
			continue
		}
		*out = append(*out, requestOutcome{digest: digestTensor(y)})
	}
	*cs = client.Stats()
	return nil
}

// digestTensor is a 64-bit FNV-1a over the tensor's float bits —
// byte-identical logits, identical digest.
func digestTensor(t *tensor.Tensor) uint64 {
	h := fnv.New64a()
	var b [4]byte
	for _, v := range t.Data() {
		bits := math.Float32bits(v)
		b[0] = byte(bits)
		b[1] = byte(bits >> 8)
		b[2] = byte(bits >> 16)
		b[3] = byte(bits >> 24)
		_, _ = h.Write(b[:])
	}
	return h.Sum64()
}
