package experiment

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"medsplit/internal/core"
	"medsplit/internal/models"
	"medsplit/internal/nn"
	"medsplit/internal/transport"
	"medsplit/internal/wal"
	"medsplit/internal/wire"
)

// replicaTier is the in-process warm-standby tier behind a replicated
// split run: the leader's write-ahead log, one follower per replica
// (each with its own WAL and its own identically initialized back
// half), and the replication streams joining them. RunSplit wires the
// tier into the server config and drives the session through run.
type replicaTier struct {
	cfg        Config
	codec      wire.Codec
	leaderLog  *wal.Log
	leaderEnds []transport.Conn // leader side of each replication stream
	followers  []*core.Follower
	backs      []*nn.Sequential // follower back halves, by follower index
	logs       []*wal.Log       // follower WALs
	tmpDir     string           // non-empty when we own a temp WAL root
	closeOnce  sync.Once
}

// newReplicaTier opens the WALs and builds the followers. WALDir hosts
// a "leader" subdirectory plus one "follower-N" per replica; an empty
// WALDir uses a private temporary root removed by close.
func newReplicaTier(cfg Config, codec wire.Codec) (*replicaTier, error) {
	tr := &replicaTier{cfg: cfg, codec: codec}
	base := cfg.WALDir
	if base == "" {
		var err error
		base, err = os.MkdirTemp("", "medsplit-wal-")
		if err != nil {
			return nil, fmt.Errorf("experiment: WAL root: %w", err)
		}
		tr.tmpDir = base
	}
	fail := func(err error) (*replicaTier, error) {
		tr.close()
		return nil, err
	}
	var err error
	tr.leaderLog, err = wal.Open(filepath.Join(base, "leader"), wal.Options{})
	if err != nil {
		return fail(err)
	}
	// Each follower keeps a full back half so promotion serves the same
	// weights the dead leader held. The builds reuse the deterministic
	// BuildModel seeding, so every replica starts bit-identical to the
	// leader's back — the replication stream keeps them that way.
	built, err := buildModels(cfg, cfg.Replicas)
	if err != nil {
		return fail(err)
	}
	for i, m := range built {
		cut := m.DefaultCut
		if cfg.Cut > 0 {
			cut = cfg.Cut
		}
		_, b, serr := models.Split(m.Net, cut)
		if serr != nil {
			return fail(serr)
		}
		flog, oerr := wal.Open(filepath.Join(base, fmt.Sprintf("follower-%d", i)), wal.Options{})
		if oerr != nil {
			return fail(oerr)
		}
		leaderEnd, followerEnd := transport.Pipe()
		f, ferr := core.NewFollower(core.FollowerConfig{
			Platforms: cfg.Platforms,
			Conn:      followerEnd,
			Log:       flog,
		})
		if ferr != nil {
			flog.Close()
			return fail(ferr)
		}
		tr.backs = append(tr.backs, b)
		tr.logs = append(tr.logs, flog)
		tr.leaderEnds = append(tr.leaderEnds, leaderEnd)
		tr.followers = append(tr.followers, f)
	}
	return tr, nil
}

// close releases the tier's durable resources: every WAL, and the
// temporary root when the tier created one. Idempotent.
func (tr *replicaTier) close() {
	tr.closeOnce.Do(func() {
		if tr.leaderLog != nil {
			tr.leaderLog.Close()
		}
		for _, l := range tr.logs {
			l.Close()
		}
		if tr.tmpDir != "" {
			os.RemoveAll(tr.tmpDir)
		}
	})
}

// template builds the promoted server's configuration from the run's
// Config — the same schedule knobs the dead leader ran, with the
// follower's own back half. StartRound and Mode are derived by Promote.
func (tr *replicaTier) template(follower int) core.ServerConfig {
	scfg := core.ServerConfig{
		Back:            tr.backs[follower],
		Opt:             &nn.SGD{LR: tr.cfg.LR},
		Platforms:       tr.cfg.Platforms,
		Rounds:          tr.cfg.Rounds,
		ClipGrads:       5,
		L1SyncEvery:     tr.cfg.L1SyncEvery,
		EvalEvery:       tr.cfg.EvalEvery,
		CheckpointEvery: tr.cfg.CheckpointEvery,
		CheckpointDir:   tr.cfg.CheckpointDir,
		Codec:           tr.codec,
	}
	if tr.cfg.LabelSharing {
		scfg.LabelSharing = true
		scfg.Loss = newLoss()
	}
	return scfg
}

// run drives a replicated session: the leader serves, followers apply
// the replication stream, platforms train. If the leader dies (the
// KillLeaderAt fault, or any genuine failure), the most caught-up
// healthy follower promotes, adopts the redialed platforms through the
// broker, and finishes the session. Returns the platform stats and,
// when a failover happened, the surviving back half (whose weights the
// digest must fold instead of the dead leader's).
func (tr *replicaTier) run(srv *core.Server, platforms []*core.Platform, serverConns, platformConns []transport.Conn, broker *core.RejoinBroker) ([]*core.PlatformStats, *nn.Sequential, error) {
	K := len(platforms)
	stats := make([]*core.PlatformStats, K)
	perrs := make([]error, K)

	leaderDone := make(chan error, 1)
	go func() {
		err := srv.Serve(serverConns)
		// The leader is finished either way: release its platform links
		// and end the replication streams so followers see the close.
		for _, c := range serverConns {
			c.Close()
		}
		for _, c := range tr.leaderEnds {
			c.Close()
		}
		leaderDone <- err
	}()

	ferrs := make([]error, len(tr.followers))
	var fwg sync.WaitGroup
	for i, f := range tr.followers {
		fwg.Add(1)
		go func(i int, f *core.Follower) {
			defer fwg.Done()
			ferrs[i] = f.Run()
		}(i, f)
	}

	var pwg sync.WaitGroup
	for k, p := range platforms {
		pwg.Add(1)
		go func(k int, p *core.Platform) {
			defer pwg.Done()
			st, err := p.Run(platformConns[k])
			if err != nil {
				perrs[k] = fmt.Errorf("platform %d: %w", k, err)
				platformConns[k].Close()
				return
			}
			stats[k] = st
		}(k, p)
	}

	lerr := <-leaderDone
	fwg.Wait()

	var surviving *nn.Sequential
	var promoErr error
	if lerr != nil {
		// Fail over: promote the most caught-up follower that survived
		// bootstrap and kept a clean stream.
		best := -1
		for i, f := range tr.followers {
			if ferrs[i] != nil {
				continue
			}
			if best < 0 || f.Watermark() > tr.followers[best].Watermark() {
				best = i
			}
		}
		switch {
		case broker == nil:
			promoErr = fmt.Errorf("experiment: leader died with no rejoin broker: %w", lerr)
		case best < 0:
			promoErr = fmt.Errorf("experiment: leader died and no follower survived: %w", lerr)
		default:
			promoted, conns, err := tr.followers[best].Promote(core.PromoteConfig{
				Server: tr.template(best),
				Broker: broker,
				Window: 30 * time.Second,
			})
			if err != nil {
				promoErr = fmt.Errorf("experiment: promotion: %w", err)
			} else {
				surviving = tr.backs[best]
				if serr := promoted.Serve(conns); serr != nil {
					promoErr = fmt.Errorf("experiment: promoted server: %w", serr)
				}
				for _, c := range conns {
					c.Close()
				}
			}
		}
		if promoErr != nil {
			// No promoted server will adopt the platforms parked in their
			// rejoin windows; cut the old links so they fail promptly
			// (their redial attempts still time out on their own).
			for _, c := range platformConns {
				c.Close()
			}
		}
	}
	pwg.Wait()
	for _, c := range platformConns {
		c.Close()
	}

	errs := append([]error{}, perrs...)
	if promoErr != nil {
		errs = append(errs, promoErr)
	}
	if lerr != nil && tr.cfg.KillLeaderAt == 0 {
		// An unscripted leader death is a real failure even if the
		// failover absorbed it.
		errs = append(errs, fmt.Errorf("server: %w", lerr))
	}
	if err := errors.Join(errs...); err != nil {
		return nil, nil, err
	}
	return stats, surviving, nil
}
