package experiment

import (
	"fmt"

	"medsplit/internal/metrics"
)

// Comparison is the outcome of running several schemes on one workload.
type Comparison struct {
	Workload string
	Results  []*Result
}

// Fig4Measured runs the paper's Fig. 4 comparison — the proposed split
// framework against Large-Scale Synchronous SGD — on the trainable
// scaled-down models, measuring real bytes through the metered
// transports and real accuracy on the held-out set.
func Fig4Measured(cfg Config) (*Comparison, error) {
	cfg = cfg.withDefaults()
	split, err := RunSplit(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig4 split: %w", err)
	}
	sgd, err := RunSyncSGD(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig4 sync-sgd: %w", err)
	}
	return &Comparison{
		Workload: fmt.Sprintf("%s / %d classes / %d platforms / %d rounds",
			cfg.Arch, cfg.Classes, cfg.Platforms, cfg.Rounds),
		Results: []*Result{split, sgd},
	}, nil
}

// Fig4MeasuredWithFedAvg additionally runs the related-work FedAvg
// baseline on the same workload.
func Fig4MeasuredWithFedAvg(cfg Config) (*Comparison, error) {
	cmp, err := Fig4Measured(cfg)
	if err != nil {
		return nil, err
	}
	fa, err := RunFedAvg(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig4 fedavg: %w", err)
	}
	cmp.Results = append(cmp.Results, fa)
	return cmp, nil
}

// Table renders a comparison in the shape of the paper's Fig. 4: total
// transmitted data and accuracy per scheme, plus accuracy at the equal
// communication budget (the smallest scheme total).
func (c *Comparison) Table() *metrics.Table {
	var budget int64 = -1
	for _, r := range c.Results {
		if budget < 0 || r.TrainingBytes < budget {
			budget = r.TrainingBytes
		}
	}
	t := &metrics.Table{
		Title:   "Fig. 4 (measured): " + c.Workload,
		Headers: []string{"scheme", "params", "transmitted", "final acc", fmt.Sprintf("acc @ %s", metrics.FormatBytes(budget))},
	}
	for _, r := range c.Results {
		accAt := r.Curve.AccuracyAtBudget(budget)
		accAtStr := "n/a"
		if accAt >= 0 {
			accAtStr = fmt.Sprintf("%.1f%%", 100*accAt)
		}
		t.AddRow(
			r.Scheme,
			fmt.Sprintf("%d", r.ModelParams),
			metrics.FormatBytes(r.TrainingBytes),
			fmt.Sprintf("%.1f%%", 100*r.FinalAccuracy),
			accAtStr,
		)
	}
	return t
}

// ImbalanceOutcome reports the paper's §II imbalance-mitigation claim:
// accuracy under imbalanced shards with uniform vs proportional
// minibatch sizing.
type ImbalanceOutcome struct {
	ShardSizes   []int
	Uniform      *Result
	Proportional *Result
}

// Imbalance runs the ablation. cfg should use power-law or Dirichlet
// sharding; the same data, models and round budget are used for both
// arms, so the only difference is the paper's proportional batch rule.
func Imbalance(cfg Config) (*ImbalanceOutcome, error) {
	cfg = cfg.withDefaults()
	if cfg.Sharding == ShardingIID {
		cfg.Sharding = ShardingPowerLaw
	}
	shards, _, _, err := BuildData(cfg)
	if err != nil {
		return nil, err
	}
	sizes := make([]int, len(shards))
	for i, s := range shards {
		sizes[i] = s.Len()
	}

	uniformCfg := cfg
	uniformCfg.Proportional = false
	uniform, err := RunSplit(uniformCfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: imbalance uniform arm: %w", err)
	}
	uniform.Scheme = "uniform minibatch"

	propCfg := cfg
	propCfg.Proportional = true
	prop, err := RunSplit(propCfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: imbalance proportional arm: %w", err)
	}
	prop.Scheme = "proportional minibatch (paper)"

	return &ImbalanceOutcome{ShardSizes: sizes, Uniform: uniform, Proportional: prop}, nil
}

// Table renders the imbalance ablation.
func (o *ImbalanceOutcome) Table() *metrics.Table {
	t := &metrics.Table{
		Title:   fmt.Sprintf("Data-imbalance mitigation (shard sizes %v)", o.ShardSizes),
		Headers: []string{"batch policy", "transmitted", "final acc", "best acc"},
	}
	for _, r := range []*Result{o.Uniform, o.Proportional} {
		t.AddRow(
			r.Scheme,
			metrics.FormatBytes(r.TrainingBytes),
			fmt.Sprintf("%.1f%%", 100*r.FinalAccuracy),
			fmt.Sprintf("%.1f%%", 100*r.Curve.BestAccuracy()),
		)
	}
	return t
}

// CurveTable renders a result's full accuracy-vs-bytes trajectory (the
// line-plot view of Fig. 4).
func CurveTable(results ...*Result) *metrics.Table {
	t := &metrics.Table{
		Title:   "Accuracy vs cumulative communication",
		Headers: []string{"scheme", "round", "bytes", "accuracy", "sim time"},
	}
	for _, r := range results {
		for _, p := range r.Curve.Points {
			t.AddRow(
				r.Scheme,
				fmt.Sprintf("%d", p.Round),
				metrics.FormatBytes(p.Bytes),
				fmt.Sprintf("%.1f%%", 100*p.Accuracy),
				p.SimTime.String(),
			)
		}
	}
	return t
}
