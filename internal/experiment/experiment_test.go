package experiment

import (
	"strings"
	"testing"

	"medsplit/internal/geonet"
)

// fastCfg is a config small enough for unit tests: MLP on a tiny
// corpus. The full VGG/ResNet configurations run in the benchmarks and
// cmd/figures.
func fastCfg() Config {
	return Config{
		Arch:         ArchMLP,
		Classes:      4,
		TrainSamples: 160,
		TestSamples:  48,
		Platforms:    2,
		Rounds:       20,
		TotalBatch:   16,
		EvalEvery:    10,
		Seed:         1,
	}
}

func TestRunSplitProducesCurve(t *testing.T) {
	res, err := RunSplit(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve.Points) == 0 {
		t.Fatal("empty curve")
	}
	if res.TrainingBytes == 0 {
		t.Fatal("no communication recorded")
	}
	if res.FinalAccuracy < 0 || res.FinalAccuracy > 1 {
		t.Fatalf("accuracy %v", res.FinalAccuracy)
	}
	// Bytes must be cumulative and strictly increasing.
	prev := int64(-1)
	for _, p := range res.Curve.Points {
		if p.Bytes <= prev {
			t.Fatalf("bytes not increasing: %v", res.Curve.Points)
		}
		prev = p.Bytes
	}
}

func TestRunSyncSGDProducesCurve(t *testing.T) {
	res, err := RunSyncSGD(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve.Points) == 0 || res.TrainingBytes == 0 {
		t.Fatalf("curve %v bytes %d", res.Curve.Points, res.TrainingBytes)
	}
}

func TestRunFedAvgProducesCurve(t *testing.T) {
	cfg := fastCfg()
	cfg.LocalSteps = 2
	res, err := RunFedAvg(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve.Points) == 0 || res.TrainingBytes == 0 {
		t.Fatalf("curve %v bytes %d", res.Curve.Points, res.TrainingBytes)
	}
}

// The paper's headline: at the same round schedule the split framework
// transmits less than full-model synchronous SGD (model ≫ activations)
// — here with the MLP whose 200k params dwarf its 64-unit hidden
// activations.
func TestFig4MeasuredSplitWins(t *testing.T) {
	cmp, err := Fig4Measured(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Results) != 2 {
		t.Fatalf("%d results", len(cmp.Results))
	}
	split, sgd := cmp.Results[0], cmp.Results[1]
	if split.TrainingBytes >= sgd.TrainingBytes {
		t.Fatalf("split %d bytes >= sgd %d bytes", split.TrainingBytes, sgd.TrainingBytes)
	}
	tbl := cmp.Table().String()
	for _, want := range []string{"split (proposed)", "large-scale sync SGD", "transmitted"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table missing %q:\n%s", want, tbl)
		}
	}
}

func TestImbalanceAblationRuns(t *testing.T) {
	cfg := fastCfg()
	cfg.Sharding = ShardingPowerLaw
	cfg.Alpha = 1.5
	out, err := Imbalance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.ShardSizes) != cfg.Platforms {
		t.Fatalf("shard sizes %v", out.ShardSizes)
	}
	if out.ShardSizes[0] <= out.ShardSizes[1] {
		t.Fatalf("power-law shards not imbalanced: %v", out.ShardSizes)
	}
	if out.Uniform.FinalAccuracy < 0 || out.Proportional.FinalAccuracy < 0 {
		t.Fatal("missing accuracies")
	}
	tbl := out.Table().String()
	if !strings.Contains(tbl, "proportional minibatch (paper)") {
		t.Fatalf("table:\n%s", tbl)
	}
}

func TestSimulatedWallClockAnnotated(t *testing.T) {
	cfg := fastCfg()
	cfg.Topology = geonet.DefaultHospitalTopology()
	cfg.Regions = []geonet.Region{"snuh-seoul", "ucf-orlando"}
	res, err := RunSplit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RoundTime <= 0 {
		t.Fatal("no round-time estimate")
	}
	for _, p := range res.Curve.Points {
		if p.SimTime <= 0 {
			t.Fatalf("point %d missing sim time", p.Round)
		}
	}
}

// The pipelined split runner: trains to a sane curve, annotates
// simulated wall-clock from the overlapped-schedule estimator, and
// rejects nonsensical combinations.
func TestRunSplitPipelined(t *testing.T) {
	cfg := fastCfg()
	cfg.Pipelined = true // depth defaults to 2: shadow fronts engaged
	cfg.Topology = geonet.DefaultHospitalTopology()
	cfg.Regions = []geonet.Region{"snuh-seoul", "ucf-orlando"}
	res, err := RunSplit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve.Points) == 0 || res.TrainingBytes == 0 {
		t.Fatalf("curve %v bytes %d", res.Curve.Points, res.TrainingBytes)
	}
	if res.FinalAccuracy < 0 || res.FinalAccuracy > 1 {
		t.Fatalf("accuracy %v", res.FinalAccuracy)
	}
	if res.RoundTime <= 0 {
		t.Fatal("no round-time estimate")
	}
	// The overlapped schedule must beat the strictly serial one on the
	// same measured message sizes — both arms now use the same
	// schedule-aware geonet model, so the comparison is direct.
	seq := fastCfg()
	seq.Topology = cfg.Topology
	seq.Regions = cfg.Regions
	seqRes, err := RunSplit(seq)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainingBytes != seqRes.TrainingBytes {
		t.Fatalf("pipelining changed wire bytes: %d vs %d", res.TrainingBytes, seqRes.TrainingBytes)
	}
	if res.RoundTime >= seqRes.RoundTime {
		t.Fatalf("pipelined round time %v not below sequential %v", res.RoundTime, seqRes.RoundTime)
	}
}

func TestPipelinedDepth1MatchesSequentialResult(t *testing.T) {
	cfg := fastCfg()
	cfg.Pipelined = true
	cfg.PipelineDepth = 1
	pipe, err := RunSplit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seqRes, err := RunSplit(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if pipe.FinalAccuracy != seqRes.FinalAccuracy {
		t.Fatalf("depth-1 pipelined accuracy %v != sequential %v", pipe.FinalAccuracy, seqRes.FinalAccuracy)
	}
	if pipe.TrainingBytes != seqRes.TrainingBytes {
		t.Fatalf("depth-1 pipelined bytes %d != sequential %d", pipe.TrainingBytes, seqRes.TrainingBytes)
	}
}

func TestPipelinedConcatMutuallyExclusive(t *testing.T) {
	cfg := fastCfg()
	cfg.Pipelined = true
	cfg.ConcatRounds = true
	if _, err := RunSplit(cfg); err == nil {
		t.Fatal("ConcatRounds+Pipelined accepted")
	}
}

func TestRegionCountValidated(t *testing.T) {
	cfg := fastCfg()
	cfg.Topology = geonet.DefaultHospitalTopology()
	cfg.Regions = []geonet.Region{"snuh-seoul"} // 1 region, 2 platforms
	if _, err := RunSplit(cfg); err == nil {
		t.Fatal("region/platform mismatch accepted")
	}
}

func TestUnknownArchRejected(t *testing.T) {
	cfg := fastCfg()
	cfg.Arch = "transformer"
	if _, err := RunSplit(cfg); err == nil {
		t.Fatal("unknown arch accepted")
	}
}

func TestUnknownShardingRejected(t *testing.T) {
	cfg := fastCfg()
	cfg.Sharding = "by-vibes"
	if _, err := RunSplit(cfg); err == nil {
		t.Fatal("unknown sharding accepted")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a, err := RunSplit(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSplit(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalAccuracy != b.FinalAccuracy || a.TrainingBytes != b.TrainingBytes {
		t.Fatalf("non-deterministic: acc %v/%v bytes %d/%d",
			a.FinalAccuracy, b.FinalAccuracy, a.TrainingBytes, b.TrainingBytes)
	}
}

func TestLabelSharingAblationMovesFewerBytes(t *testing.T) {
	private, err := RunSplit(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg()
	cfg.LabelSharing = true
	sharing, err := RunSplit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Label sharing drops the logits/loss-grad round trip, so it must
	// cost less wire — the price is label privacy, not bytes.
	if sharing.TrainingBytes >= private.TrainingBytes {
		t.Fatalf("label sharing %d >= label private %d bytes",
			sharing.TrainingBytes, private.TrainingBytes)
	}
}

func TestCutDepthAblation(t *testing.T) {
	// MLP layers: fc1, tanh1, head. Cut=1 puts only fc1 on the platform
	// (activations pre-tanh); cut=2 is the default.
	cfg := fastCfg()
	cfg.Cut = 1
	res, err := RunSplit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainingBytes == 0 {
		t.Fatal("no traffic")
	}
}

func TestL1SyncAblationRuns(t *testing.T) {
	cfg := fastCfg()
	cfg.L1SyncEvery = 5
	res, err := RunSplit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Syncing L1 through the server adds ModelPush traffic on top of the
	// four-message exchange.
	noSync, err := RunSplit(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainingBytes <= noSync.TrainingBytes {
		t.Fatalf("L1 sync (%d bytes) should cost more than none (%d bytes)",
			res.TrainingBytes, noSync.TrainingBytes)
	}
}

func TestConcatRoundsMode(t *testing.T) {
	cfg := fastCfg()
	cfg.ConcatRounds = true
	res, err := RunSplit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve.Points) == 0 {
		t.Fatal("no curve")
	}
}

func TestCurveTableRenders(t *testing.T) {
	res, err := RunSplit(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := CurveTable(res).String()
	if !strings.Contains(out, "split (proposed)") {
		t.Fatalf("curve table:\n%s", out)
	}
}

func TestProportionalBatchesChangeAllocation(t *testing.T) {
	cfg := fastCfg()
	cfg.Sharding = ShardingPowerLaw
	cfg.Alpha = 1.5
	shards, _, uniform, err := BuildData(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Proportional = true
	_, _, prop, err := BuildData(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(uniform) != len(prop) {
		t.Fatal("length mismatch")
	}
	if uniform[0] == prop[0] && uniform[1] == prop[1] {
		t.Fatalf("proportional allocation %v identical to uniform %v for shards %d/%d",
			prop, uniform, shards[0].Len(), shards[1].Len())
	}
}

func TestRunReplicatedAggregates(t *testing.T) {
	cfg := fastCfg()
	cfg.Rounds = 10
	cfg.EvalEvery = 10
	rep, err := RunReplicated(RunSplit, cfg, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 3 {
		t.Fatalf("%d runs", len(rep.Runs))
	}
	if rep.MeanAccuracy < 0 || rep.MeanAccuracy > 1 {
		t.Fatalf("mean accuracy %v", rep.MeanAccuracy)
	}
	// Byte counts are shape-deterministic: zero variance across seeds.
	if rep.StdBytes != 0 {
		t.Fatalf("byte std %v, want 0", rep.StdBytes)
	}
	if rep.String() == "" {
		t.Fatal("empty summary")
	}
	if _, err := RunReplicated(RunSplit, cfg, nil); err == nil {
		t.Fatal("no seeds accepted")
	}
}

func TestRunReplicatedPropagatesErrors(t *testing.T) {
	cfg := fastCfg()
	cfg.Arch = "bogus"
	if _, err := RunReplicated(RunSplit, cfg, []uint64{1}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestAugmentedSplitTrainingRuns(t *testing.T) {
	// CNN config with platform-side augmentation enabled end to end.
	cfg := Config{
		Arch:         ArchVGG,
		Classes:      3,
		Width:        2,
		TrainSamples: 90,
		TestSamples:  30,
		Platforms:    2,
		Rounds:       6,
		TotalBatch:   8,
		EvalEvery:    6,
		Seed:         5,
		Augment:      true,
	}
	res, err := RunSplit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve.Points) == 0 {
		t.Fatal("no curve")
	}
}
