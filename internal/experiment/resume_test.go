package experiment

import (
	"testing"

	"medsplit/internal/core"
)

// A RunSplit interrupted at a checkpoint and resumed in a fresh
// "process" (fresh models, data, samplers — everything rebuilt from
// the config, state restored from the snapshots) must land at exactly
// the same final accuracy as the uninterrupted run: the restored
// trajectory is bit-identical, so even the float comparison is exact.
func TestRunSplitResumeMatchesUninterrupted(t *testing.T) {
	full, err := RunSplit(fastCfg())
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	seg1 := fastCfg()
	seg1.Rounds = 13 // interrupt at an "odd" round, mid eval interval
	seg1.CheckpointDir = dir
	seg1.CheckpointEvery = 13
	if _, err := RunSplit(seg1); err != nil {
		t.Fatal(err)
	}

	seg2 := fastCfg()
	seg2.ResumeFrom = dir
	res, err := RunSplit(seg2)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy != full.FinalAccuracy {
		t.Fatalf("resumed accuracy %v, uninterrupted %v", res.FinalAccuracy, full.FinalAccuracy)
	}
	// The resumed curve only covers resumed rounds, all past the cut.
	for _, p := range res.Curve.Points {
		if p.Round < 13 {
			t.Fatalf("resumed curve contains pre-checkpoint round %d", p.Round)
		}
	}

	// The snapshots carry the round counter.
	snap, err := core.LoadSnapshotFile(core.ServerSnapshotGenPath(dir, 13))
	if err != nil {
		t.Fatal(err)
	}
	if snap.NextRound != 13 {
		t.Fatalf("server snapshot resumes at %d, want 13", snap.NextRound)
	}
}

// Resume also composes with the pipelined scheduler at depth 1, where
// the trajectory is defined to match sequential bit for bit.
func TestRunSplitResumePipelinedDepth1(t *testing.T) {
	base := fastCfg()
	base.Pipelined = true
	base.PipelineDepth = 1

	full, err := RunSplit(base)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	seg1 := base
	seg1.Rounds = 11
	seg1.CheckpointDir = dir
	seg1.CheckpointEvery = 11
	if _, err := RunSplit(seg1); err != nil {
		t.Fatal(err)
	}
	seg2 := base
	seg2.ResumeFrom = dir
	res, err := RunSplit(seg2)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy != full.FinalAccuracy {
		t.Fatalf("resumed accuracy %v, uninterrupted %v", res.FinalAccuracy, full.FinalAccuracy)
	}
}

// Config.validate catches the cross-field mistakes table-driven.
func TestConfigValidationTable(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		ok   bool
	}{
		{"valid", nil, true},
		{"concat and pipelined", func(c *Config) { c.ConcatRounds = true; c.Pipelined = true }, false},
		{"pipeline depth without pipelined", func(c *Config) { c.PipelineDepth = 2 }, false},
		{"negative checkpoint every", func(c *Config) { c.CheckpointEvery = -3 }, false},
		{"checkpoint every without dir", func(c *Config) { c.CheckpointEvery = 4 }, false},
		{"checkpoint every with dir", func(c *Config) { c.CheckpointEvery = 4; c.CheckpointDir = t.TempDir() }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := fastCfg()
			cfg.Rounds = 2 // keep the valid arms fast
			if tc.mut != nil {
				tc.mut(&cfg)
			}
			_, err := RunSplit(cfg)
			if tc.ok && err != nil {
				t.Fatalf("valid config rejected: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}
