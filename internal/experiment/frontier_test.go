package experiment

import (
	"os"
	"strings"
	"testing"
	"time"

	"medsplit/internal/geonet"
	"medsplit/internal/simnet"
	"medsplit/internal/transport/testutil"
	"medsplit/internal/wire"
)

// A trimmed frontier sweep must be deterministic cell for cell across
// two runs and produce a well-formed table. The full {100, 1000}
// sweep runs in TestConsistencyFrontierSoak (nightly).
func TestConsistencyFrontierSmoke(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	fc := FrontierConfig{Scales: []int{5}, Rounds: 4, Seed: 23, TrainPerPlatform: 8}
	a, err := RunConsistencyFrontier(fc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunConsistencyFrontier(fc)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 18 { // 6 modes × 1 scale × 3 faults
		t.Fatalf("%d cells, want 18", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cell %d diverged between runs:\n%+v\n%+v", i, a[i], b[i])
		}
		if a[i].WallClock <= 0 {
			t.Fatalf("cell %+v has no wall-clock", a[i])
		}
		if a[i].WeightDigest == 0 {
			t.Fatalf("cell %+v has a zero weight digest", a[i])
		}
		if a[i].FinalAccuracy < 0 || a[i].FinalAccuracy > 1 {
			t.Fatalf("cell %+v accuracy outside [0,1]", a[i])
		}
	}
	table := FrontierTable(a)
	for _, mode := range []string{"sequential", "pipelined", "stale-1", "stale-4", "stale-16", "splitfed"} {
		if !strings.Contains(table, mode) {
			t.Fatalf("table missing mode %s:\n%s", mode, table)
		}
	}
	// The point of the frontier: relaxing consistency buys wall-clock
	// under stragglers. Bounded staleness overlaps the straggler's slow
	// exchanges with everyone else's, so it must beat the sequential
	// schedule on the same scenario. (SplitFed is deliberately absent
	// here: its schedule overlaps the same way, but it also ships each
	// platform's whole front half at every averaging boundary, and at
	// smoke scale that traffic dwarfs the straggler saving — a tradeoff
	// the frontier table is meant to expose, not a regression.)
	byKey := func(cells []FrontierCell, mode, fault string) FrontierCell {
		for _, c := range cells {
			if c.Mode == mode && c.Fault == fault {
				return c
			}
		}
		t.Fatalf("no cell %s/%s", mode, fault)
		return FrontierCell{}
	}
	seq := byKey(a, "sequential", "stragglers")
	for _, mode := range []string{"stale-4", "stale-16"} {
		if c := byKey(a, mode, "stragglers"); c.WallClock >= seq.WallClock {
			t.Fatalf("%s (%v) not faster than sequential (%v) under stragglers",
				mode, c.WallClock, seq.WallClock)
		}
	}
}

// Acceptance bar: on the 100-platform SyntheticClinics WAN with
// heterogeneous compute and jitter, bounded staleness at K=0 trains
// bit-identically to sequential — same weight digest — and rides the
// same training-message schedule. The measured virtual elapsed is
// allowed sub-millisecond slack: the handshake ack spells out the mode
// name and staleness cap, so its byte length (and transfer time)
// differs even though every training exchange is identical.
func TestBoundedStalenessK0Digest100Platforms(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const n = 100
	topo, regions := geonet.SyntheticClinics(n, 11)
	base := Config{
		Arch:             ArchMLP,
		Classes:          4,
		TrainSamples:     2 * n,
		TestSamples:      40,
		Platforms:        n,
		Rounds:           3,
		TotalBatch:       n,
		EvalEvery:        3,
		Seed:             11,
		Topology:         topo,
		Regions:          regions,
		SimWAN:           true,
		SimJitter:        0.2,
		SimComputeServer: 2 * time.Millisecond,
		SimCompute:       geonet.SyntheticClinicCompute(n, 11, 5*time.Millisecond, 0.1),
	}
	seq, err := RunSplit(base)
	if err != nil {
		t.Fatal(err)
	}
	bs := base
	bs.BoundedStaleness = true // K=0
	got, err := RunSplit(bs)
	if err != nil {
		t.Fatal(err)
	}
	if got.WeightDigest != seq.WeightDigest {
		t.Fatalf("K=0 digest %#x, sequential %#x", got.WeightDigest, seq.WeightDigest)
	}
	diff := got.SimElapsed - seq.SimElapsed
	if diff < 0 {
		diff = -diff
	}
	if diff > time.Millisecond {
		t.Fatalf("K=0 virtual elapsed %v, sequential %v: schedules diverged", got.SimElapsed, seq.SimElapsed)
	}
}

// The relaxed modes' whole timeline — weights and virtual wall-clock —
// must reproduce bit for bit under fixed seeds even with a straggler
// compute profile and churn (transient delay spikes) injected.
func TestRelaxedModesTwiceRunIdenticalUnderFaults(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const n = 8
	topo, regions := geonet.SyntheticClinics(n, 31)
	churn := []simnet.Fault{
		{Platform: 2, Round: 1, Type: wire.MsgLossGrad, Dir: simnet.DirUp,
			Kind: simnet.FaultDelaySpike, Delay: 150 * time.Millisecond},
		{Platform: 5, Round: 2, Type: wire.MsgActivations, Dir: simnet.DirUp,
			Kind: simnet.FaultDelaySpike, Delay: 150 * time.Millisecond},
	}
	modes := []struct {
		name   string
		mutate func(*Config)
	}{
		{"stale-2", func(c *Config) { c.BoundedStaleness = true; c.Staleness = 2 }},
		{"splitfed", func(c *Config) { c.SplitFed = true; c.L1SyncEvery = 2 }},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			run := func() *Result {
				cfg := Config{
					Arch:             ArchMLP,
					Classes:          4,
					TrainSamples:     96,
					TestSamples:      24,
					Platforms:        n,
					Rounds:           4,
					TotalBatch:       16,
					EvalEvery:        4,
					Seed:             31,
					Topology:         topo,
					Regions:          regions,
					SimWAN:           true,
					SimJitter:        0.2,
					SimFaults:        churn,
					SimComputeServer: 2 * time.Millisecond,
					SimCompute:       geonet.SyntheticClinicCompute(n, 31, 5*time.Millisecond, 0.2),
				}
				mode.mutate(&cfg)
				res, err := RunSplit(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			a, b := run(), run()
			if a.WeightDigest != b.WeightDigest {
				t.Fatalf("weight digests diverged: %#x vs %#x", a.WeightDigest, b.WeightDigest)
			}
			if a.SimElapsed != b.SimElapsed {
				t.Fatalf("virtual timelines diverged: %v vs %v", a.SimElapsed, b.SimElapsed)
			}
			if a.SimElapsed <= 0 {
				t.Fatal("no virtual elapsed time measured")
			}
		})
	}
}

// With compute charges on, the analytic estimate gains exactly
// platforms × (server + platform compute) per round — the sequential
// sum is linear in the charges — and the measured elapsed grows too,
// deterministically. Homogeneous compute on the default 5-hospital
// topology; the exact measured-vs-analytic agreement is pinned down in
// simnet's TestComputeMatchesSequentialEstimatorPerHospital.
func TestSimElapsedIncludesCompute(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	topo := geonet.DefaultHospitalTopology()
	regions := []geonet.Region{"snuh-seoul", "pusan-nat-univ", "chungang-univ", "korea-univ", "ucf-orlando"}
	base := Config{
		Arch:         ArchMLP,
		Classes:      4,
		TrainSamples: 100,
		TestSamples:  20,
		Platforms:    5,
		Rounds:       4,
		TotalBatch:   10,
		EvalEvery:    4,
		Seed:         47,
		Topology:     topo,
		Regions:      regions,
		SimWAN:       true,
	}
	plain, err := RunSplit(base)
	if err != nil {
		t.Fatal(err)
	}
	const serverC, platformC = 20 * time.Millisecond, 5 * time.Millisecond
	withC := base
	withC.SimComputeServer = serverC
	withC.SimCompute = []time.Duration{platformC, platformC, platformC, platformC, platformC}
	loaded, err := RunSplit(withC)
	if err != nil {
		t.Fatal(err)
	}
	if want := plain.RoundTime + 5*(serverC+platformC); loaded.RoundTime != want {
		t.Fatalf("analytic round time %v, want %v (+5×%v over %v)",
			loaded.RoundTime, want, serverC+platformC, plain.RoundTime)
	}
	// Measured elapsed grows too — but not by the full analytic sum:
	// fast platforms' compute overlaps the slow site's in-flight
	// uploads (the server works while ucf-orlando's activations are
	// still crossing the WAN), so only critical-path charges extend
	// the clock. At minimum the slowest platform's exchange serializes
	// one server + one platform charge per round; at most every charge
	// lands on the path.
	grew := loaded.SimElapsed - plain.SimElapsed
	if grew < 4*(serverC+platformC) {
		t.Fatalf("measured elapsed grew %v, want at least one charge pair per round (%v): compute not folded into the virtual clock",
			grew, 4*(serverC+platformC))
	}
	if grew > 4*5*(serverC+platformC) {
		t.Fatalf("measured elapsed grew %v, more than every charge in the session (%v)",
			grew, 4*5*(serverC+platformC))
	}
	if loaded.WeightDigest != plain.WeightDigest {
		t.Fatalf("compute model changed the trained weights: %#x vs %#x",
			loaded.WeightDigest, plain.WeightDigest)
	}
}

// TestConsistencyFrontierSoak is the full-scale {100, 1000}-platform
// frontier sweep from the issue's acceptance bar. It takes minutes and
// real memory, so it only runs when FRONTIER_SOAK=1 (nightly CI);
// tier-1 covers the same code through the trimmed smoke sweep above.
func TestConsistencyFrontierSoak(t *testing.T) {
	if os.Getenv("FRONTIER_SOAK") == "" {
		t.Skip("set FRONTIER_SOAK=1 to run the full frontier sweep")
	}
	fc := FrontierConfig{Seed: 5}
	a, err := RunConsistencyFrontier(fc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunConsistencyFrontier(fc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cell %d diverged between runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
	t.Logf("consistency frontier (%d cells):\n%s", len(a), FrontierTable(a))
}
