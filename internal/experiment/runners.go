package experiment

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"time"

	"medsplit/internal/compress"
	"medsplit/internal/core"
	"medsplit/internal/dataset"
	"medsplit/internal/fedavg"
	"medsplit/internal/geonet"
	"medsplit/internal/metrics"
	"medsplit/internal/models"
	"medsplit/internal/nn"
	"medsplit/internal/rng"
	"medsplit/internal/simnet"
	"medsplit/internal/syncsgd"
	"medsplit/internal/transport"
	"medsplit/internal/wire"
)

// buildModels constructs count model instances concurrently. Each call
// to BuildModel seeds its own RNG from the config, so the result is
// deterministic and identical to the sequential loop it replaces; the
// fan-out just overlaps the He-initialization work (one full weight set
// per platform), which otherwise serializes the start of every
// multi-platform experiment.
func buildModels(cfg Config, count int) ([]*models.Model, error) {
	ms := make([]*models.Model, count)
	errs := make([]error, count)
	var wg sync.WaitGroup
	for k := range ms {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			ms[k], errs[k] = BuildModel(cfg)
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return ms, nil
}

// loadResumeSnapshots reads the server's and every platform's most
// advanced snapshot (scheduled checkpoint or abort/stop stash,
// whichever is newer — see core.LoadLatestSnapshot) from a previous
// run's checkpoint directory and validates that they all stopped at
// the same round boundary.
func loadResumeSnapshots(dir string, platforms int) (srv *core.Snapshot, plats []*core.Snapshot, err error) {
	srv, err = core.LoadLatestSnapshot(dir, core.RoleServer, 0)
	if err != nil {
		return nil, nil, err
	}
	plats = make([]*core.Snapshot, platforms)
	for k := range plats {
		plats[k], err = core.LoadLatestSnapshot(dir, core.RolePlatform, k)
		if err != nil {
			return nil, nil, err
		}
		if plats[k].NextRound != srv.NextRound {
			return nil, nil, fmt.Errorf("experiment: platform %d checkpointed at round %d, server at %d",
				k, plats[k].NextRound, srv.NextRound)
		}
	}
	return srv, plats, nil
}

// RunSplit trains the config with the paper's split-learning framework
// and returns the accuracy-vs-communication curve.
func RunSplit(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	shards, test, batches, err := BuildData(cfg)
	if err != nil {
		return nil, err
	}
	var srvSnap *core.Snapshot
	var platSnaps []*core.Snapshot
	startRound := 0
	if cfg.ResumeFrom != "" {
		srvSnap, platSnaps, err = loadResumeSnapshots(cfg.ResumeFrom, cfg.Platforms)
		if err != nil {
			return nil, err
		}
		startRound = srvSnap.NextRound
	}
	// One identically initialized model instance per platform (fronts)
	// plus one for the server (back) — the paper's "same weights in L1"
	// postulate.
	fronts := make([]*nn.Sequential, cfg.Platforms)
	var back *nn.Sequential
	var whole *models.Model
	built, err := buildModels(cfg, cfg.Platforms+1)
	if err != nil {
		return nil, err
	}
	for k, m := range built {
		cut := m.DefaultCut
		if cfg.Cut > 0 {
			cut = cfg.Cut
		}
		f, b, err := models.Split(m.Net, cut)
		if err != nil {
			return nil, err
		}
		if k == cfg.Platforms {
			back = b
			whole = m
		} else {
			fronts[k] = f
		}
	}

	mode := core.RoundModeSequential
	if cfg.ConcatRounds {
		mode = core.RoundModeConcat
	}
	if cfg.Pipelined {
		mode = core.RoundModePipelined
	}
	if cfg.BoundedStaleness {
		mode = core.RoundModeBoundedStaleness
	}
	if cfg.SplitFed {
		mode = core.RoundModeSplitFed
	}
	// Shadow fronts let platforms overlap their L1 backward with the
	// next batch's forward at depth >= 2. Each shadow comes from a full
	// BuildModel whose back half is discarded — wasteful in principle,
	// but it is one-time startup work, the builds run concurrently, and
	// there is no front-only constructor; NewPlatform re-copies weights
	// and state from Front, so only the structure matters.
	var shadows []*nn.Sequential
	if cfg.Pipelined && cfg.PipelineDepth >= 2 {
		extra, err := buildModels(cfg, cfg.Platforms)
		if err != nil {
			return nil, err
		}
		shadows = make([]*nn.Sequential, cfg.Platforms)
		for k, m := range extra {
			cut := m.DefaultCut
			if cfg.Cut > 0 {
				cut = cfg.Cut
			}
			f, _, err := models.Split(m.Net, cut)
			if err != nil {
				return nil, err
			}
			shadows[k] = f
		}
	}
	codec := wire.Codec(wire.RawCodec{})
	if cfg.Codec != "" {
		var cerr error
		codec, cerr = compress.ByName(cfg.Codec)
		if cerr != nil {
			return nil, cerr
		}
	}
	// The simulated WAN (and the rejoin broker, when faults may drop
	// platforms) must exist before the server and platform configs: the
	// recovery wiring closes over both.
	var wan *simnet.Network
	var wanPairs []simnet.Pair
	var broker *core.RejoinBroker
	if cfg.SimWAN {
		faults := cfg.SimFaults
		if cfg.KillLeaderAt > 0 {
			// Script the leader's death: the server process dies while
			// sending platform 0's cut gradient at the kill round, every
			// link severs at once, and the first redial attempts fail
			// while the failover is still settling.
			faults = append(append([]simnet.Fault(nil), faults...), simnet.Fault{
				Platform:  0,
				Round:     cfg.KillLeaderAt,
				Type:      wire.MsgCutGrad,
				Dir:       simnet.DirDown,
				Kind:      simnet.FaultKillServer,
				FailDials: 2,
			})
		}
		var werr error
		wan, wanPairs, werr = simnet.FromTopology(cfg.Topology, cfg.Regions, simnet.Options{
			Seed:   cfg.Seed + 0x51A47,
			Jitter: cfg.SimJitter,
			Faults: faults,
			Compute: simnet.Compute{
				Server:   cfg.SimComputeServer,
				Platform: cfg.SimCompute,
			},
		})
		if werr != nil {
			return nil, werr
		}
		if cfg.SimRejoin != "" || cfg.KillLeaderAt > 0 {
			broker = core.NewRejoinBroker()
			defer broker.Close()
		}
	}
	scfg := core.ServerConfig{
		Back:              back,
		Opt:               &nn.SGD{LR: cfg.LR},
		Platforms:         cfg.Platforms,
		Rounds:            cfg.Rounds,
		StartRound:        startRound,
		Mode:              mode,
		Staleness:         cfg.Staleness,
		PipelineDepth:     cfg.PipelineDepth,
		IOGoroutineBudget: cfg.PipelineIOBudget,
		ClipGrads:         5,
		L1SyncEvery:       cfg.L1SyncEvery,
		EvalEvery:         cfg.EvalEvery,
		CheckpointEvery:   cfg.CheckpointEvery,
		CheckpointDir:     cfg.CheckpointDir,
		Codec:             codec,
	}
	if cfg.LabelSharing {
		scfg.LabelSharing = true
		scfg.Loss = newLoss()
	}
	if broker != nil && cfg.SimRejoin != "" {
		// Dropout recovery on the leader. The KillLeaderAt path keeps the
		// broker but no Recovery: a killed leader must die promptly so
		// the follower can take over, not sit out a rejoin window.
		policy := core.WaitForRejoin
		if cfg.SimRejoin == "proceed" {
			policy = core.ProceedWithout
		}
		scfg.Recovery = &core.RecoveryConfig{Policy: policy, Window: 30 * time.Second, Broker: broker}
	}
	var tier *replicaTier
	if cfg.Replicas > 0 {
		tier, err = newReplicaTier(cfg, codec)
		if err != nil {
			return nil, err
		}
		defer tier.close()
		scfg.Replication = &core.ReplicationConfig{Log: tier.leaderLog, Followers: tier.leaderEnds}
	}
	srv, err := core.NewServer(scfg)
	if err != nil {
		return nil, err
	}
	if srvSnap != nil {
		if err := srv.RestoreSnapshot(srvSnap); err != nil {
			return nil, err
		}
	}
	meters := make([]*transport.Meter, cfg.Platforms)
	platforms := make([]*core.Platform, cfg.Platforms)
	for k := 0; k < cfg.Platforms; k++ {
		meters[k] = &transport.Meter{}
		pc := core.PlatformConfig{
			ID:              k,
			Front:           fronts[k],
			Opt:             &nn.SGD{LR: cfg.LR},
			Loss:            newLoss(),
			Shard:           shards[k],
			Batch:           batches[k],
			Rounds:          cfg.Rounds,
			StartRound:      startRound,
			LabelSharing:    cfg.LabelSharing,
			ClipGrads:       5,
			L1SyncEvery:     cfg.L1SyncEvery,
			EvalEvery:       cfg.EvalEvery,
			CheckpointEvery: cfg.CheckpointEvery,
			CheckpointDir:   cfg.CheckpointDir,
			Seed:            cfg.Seed + uint64(1000+k),
			Codec:           codec,
			Meter:           meters[k],
		}
		if shadows != nil {
			pc.ShadowFront = shadows[k]
		}
		if cfg.LabelSharing {
			pc.Loss = nil
		}
		if cfg.Augment && cfg.Arch != ArchMLP {
			pc.Augment = dataset.NewAugmenter(4, true, rng.New(cfg.Seed+uint64(7000+k)))
		}
		if k == 0 {
			pc.EvalData = test
		}
		if broker != nil {
			// Dropped platforms redial through the simulated network; the
			// fresh server end reaches the session via the broker, and the
			// platform end keeps the same meter so recovered traffic stays
			// accounted.
			meter := meters[k]
			pc.RejoinWindow = 30 * time.Second
			pc.Redial = func() (transport.Conn, error) {
				sEnd, pEnd, derr := wan.Redial(k)
				if derr != nil {
					return nil, derr
				}
				go broker.Offer(sEnd)
				return transport.Metered(pEnd, meter), nil
			}
		}
		p, err := core.NewPlatform(pc)
		if err != nil {
			return nil, err
		}
		if platSnaps != nil {
			if err := p.RestoreSnapshot(platSnaps[k]); err != nil {
				return nil, err
			}
		}
		platforms[k] = p
	}
	var stats []*core.PlatformStats
	switch {
	case tier != nil:
		// Replicated sessions need the failover-aware runner even off
		// the simulated WAN, so build explicit conns either way.
		serverConns := make([]transport.Conn, cfg.Platforms)
		platformConns := make([]transport.Conn, cfg.Platforms)
		if cfg.SimWAN {
			for k, pair := range wanPairs {
				serverConns[k] = pair.Server
				platformConns[k] = transport.Metered(pair.Platform, meters[k])
			}
		} else {
			for k := range serverConns {
				s, p := transport.Pipe()
				serverConns[k] = s
				platformConns[k] = transport.Metered(p, meters[k])
			}
		}
		var surviving *nn.Sequential
		stats, surviving, err = tier.run(srv, platforms, serverConns, platformConns, broker)
		if surviving != nil {
			// A failover happened: the session's final back half lives in
			// the promoted follower, not the dead leader.
			back = surviving
		}
	case cfg.SimWAN:
		serverConns := make([]transport.Conn, cfg.Platforms)
		platformConns := make([]transport.Conn, cfg.Platforms)
		for k, pair := range wanPairs {
			serverConns[k] = pair.Server
			platformConns[k] = transport.Metered(pair.Platform, meters[k])
		}
		stats, err = core.RunConnected(srv, platforms, serverConns, platformConns)
	default:
		stats, err = core.RunLocal(srv, platforms)
	}
	if err != nil {
		return nil, err
	}

	res := &Result{
		Scheme:       "split (proposed)",
		Curve:        metrics.Curve{Label: "split"},
		ModelParams:  whole.ParamCount(),
		WeightDigest: weightDigest(fronts, back),
	}
	if wan != nil {
		res.SimElapsed = wan.Elapsed()
	}
	evalCount := len(stats[0].Evals)
	for i := 0; i < evalCount; i++ {
		var bytes int64
		for k := range stats {
			bytes += stats[k].Evals[i].TrainingBytes
		}
		pt := metrics.Round{
			Round:    stats[0].Evals[i].Round,
			Accuracy: stats[0].Evals[i].Accuracy,
			Bytes:    bytes,
		}
		// Stats index by executed round: resumed runs start at
		// startRound, so absolute round r lives at index r-startRound.
		if ri := pt.Round - startRound; ri >= 0 && ri < len(stats[0].Rounds) {
			pt.Loss = stats[0].Rounds[ri].Loss
		}
		res.Curve.Append(pt)
	}
	res.FinalAccuracy = res.Curve.Final().Accuracy
	res.TrainingBytes = res.Curve.Final().Bytes

	// Meter reads below are exact, not racy snapshots: RunLocal joined
	// the server and every platform goroutine (including the pipelined
	// mode's async reader/writer goroutines, which Serve/Run flush
	// before returning), so all CountTx/CountRx calls happen-before
	// this point. See the contract on transport.Meter.
	// A topology without regions skips the wall-clock annotation, the
	// behavior the legacy simTime path had.
	if cfg.Topology != nil && len(cfg.Regions) > 0 {
		// Sequential and pipelined estimates come from the same
		// schedule-aware model (geonet.SplitRoundShape walks), so their
		// Result.RoundTime values are directly comparable. Concat mode
		// is a genuine barrier round — every platform's exchange
		// overlaps around one fused step — so it keeps the
		// slowest-platform model, like the sync-SGD baseline.
		// Meters only saw the rounds this process executed, which on a
		// resumed run is fewer than cfg.Rounds. The shape carries the
		// configured compute model, so the analytic estimate and the
		// measured SimElapsed account for the same work; the relaxed
		// modes (bounded staleness, splitfed) overlap exchanges the
		// strict sum serializes, so for them the sequential estimate is
		// an upper bound and SimElapsed is the number to trust.
		executed := cfg.Rounds - startRound
		shape := splitShape(meters, executed)
		shape.ServerCompute = cfg.SimComputeServer
		shape.PlatformCompute = cfg.platformComputeMean()
		var rt time.Duration
		var err error
		switch {
		case cfg.Pipelined:
			rt, err = cfg.Topology.PipelinedSplitRoundTime(cfg.Regions, shape, cfg.PipelineDepth)
		case cfg.ConcatRounds:
			up := make([]int64, cfg.Platforms)
			down := make([]int64, cfg.Platforms)
			for k, m := range meters {
				up[k] = trainTx(m) / int64(executed)
				down[k] = trainRx(m) / int64(executed)
			}
			rt, err = cfg.simTime(up, down)
		default:
			rt, err = cfg.Topology.SequentialSplitRoundTime(cfg.Regions, shape)
		}
		if err != nil {
			return nil, err
		}
		res.RoundTime = rt
		annotateSimTime(&res.Curve, rt)
	}
	return res, nil
}

// weightDigest folds every final parameter's raw float bits (fronts in
// platform order, then the back half, little-endian) through FNV-1a.
// Bit-identical training ⇒ equal digests; the scenario matrix tests
// rely on this to compare runs across transports, codecs and fault
// scripts without shipping full weight sets around.
func weightDigest(fronts []*nn.Sequential, back *nn.Sequential) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	fold := func(seq *nn.Sequential) {
		for _, prm := range seq.Params() {
			for _, v := range prm.W.Data() {
				binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
				h.Write(buf[:])
			}
		}
	}
	for _, f := range fronts {
		fold(f)
	}
	fold(back)
	return h.Sum64()
}

// splitShape derives the per-message, per-platform round payloads the
// schedule-aware geonet estimators need from the platforms' meters.
// Totals divide evenly because every round moves the same message
// set; L1-sync and eval traffic use different message types and stay
// excluded.
func splitShape(meters []*transport.Meter, rounds int) geonet.SplitRoundShape {
	s := geonet.SplitRoundShape{
		ActsBytes:     make([]int64, len(meters)),
		LogitsBytes:   make([]int64, len(meters)),
		LossGradBytes: make([]int64, len(meters)),
		CutGradBytes:  make([]int64, len(meters)),
	}
	for k, m := range meters {
		s.ActsBytes[k] = (m.TxBytesByType(wire.MsgActivations) + m.TxBytesByType(wire.MsgLabels)) / int64(rounds)
		s.LogitsBytes[k] = m.RxBytesByType(wire.MsgLogits) / int64(rounds)
		s.LossGradBytes[k] = m.TxBytesByType(wire.MsgLossGrad) / int64(rounds)
		s.CutGradBytes[k] = m.RxBytesByType(wire.MsgCutGrad) / int64(rounds)
	}
	return s
}

// RunSyncSGD trains the config with the paper's baseline (Large-Scale
// Synchronous SGD).
func RunSyncSGD(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	shards, test, batches, err := BuildData(cfg)
	if err != nil {
		return nil, err
	}
	globalM, err := BuildModel(cfg)
	if err != nil {
		return nil, err
	}
	srv, err := syncsgd.NewServer(syncsgd.ServerConfig{
		Model:     globalM.Net,
		Opt:       &nn.SGD{LR: cfg.LR},
		Workers:   cfg.Platforms,
		Rounds:    cfg.Rounds,
		ClipGrads: 5,
		EvalEvery: cfg.EvalEvery,
		EvalData:  test,
	})
	if err != nil {
		return nil, err
	}
	replicas, err := buildModels(cfg, cfg.Platforms)
	if err != nil {
		return nil, err
	}
	meters := make([]*transport.Meter, cfg.Platforms)
	workers := make([]*syncsgd.Worker, cfg.Platforms)
	for k := 0; k < cfg.Platforms; k++ {
		meters[k] = &transport.Meter{}
		replica := replicas[k]
		w, err := syncsgd.NewWorker(syncsgd.WorkerConfig{
			ID:        k,
			Model:     replica.Net,
			Loss:      newLoss(),
			Shard:     shards[k],
			Batch:     batches[k],
			Rounds:    cfg.Rounds,
			EvalEvery: cfg.EvalEvery,
			Seed:      cfg.Seed + uint64(1000+k),
			Meter:     meters[k],
		})
		if err != nil {
			return nil, err
		}
		workers[k] = w
	}
	serverStats, workerStats, err := syncsgd.RunLocal(srv, workers)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Scheme:      "large-scale sync SGD",
		Curve:       metrics.Curve{Label: "sync-sgd"},
		ModelParams: globalM.ParamCount(),
	}
	for i, ev := range serverStats.Evals {
		var bytes int64
		for k := range workerStats {
			if i < len(workerStats[k].Bytes) {
				bytes += workerStats[k].Bytes[i].TrainingBytes
			}
		}
		pt := metrics.Round{Round: ev.Round, Accuracy: ev.Accuracy, Bytes: bytes}
		if len(workerStats[0].Rounds) > ev.Round {
			pt.Loss = workerStats[0].Rounds[ev.Round].Loss
		}
		res.Curve.Append(pt)
	}
	res.FinalAccuracy = res.Curve.Final().Accuracy
	res.TrainingBytes = res.Curve.Final().Bytes

	if cfg.Topology != nil {
		up := make([]int64, cfg.Platforms)
		down := make([]int64, cfg.Platforms)
		for k, m := range meters {
			up[k] = trainTx(m) / int64(cfg.Rounds)
			down[k] = trainRx(m) / int64(cfg.Rounds)
		}
		rt, err := cfg.simTime(up, down)
		if err != nil {
			return nil, err
		}
		res.RoundTime = rt
		annotateSimTime(&res.Curve, rt)
	}
	return res, nil
}

// RunFedAvg trains the config with Federated Averaging (the related-work
// de facto standard).
func RunFedAvg(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	shards, test, batches, err := BuildData(cfg)
	if err != nil {
		return nil, err
	}
	globalM, err := BuildModel(cfg)
	if err != nil {
		return nil, err
	}
	srv, err := fedavg.NewServer(fedavg.ServerConfig{
		Model:     globalM.Net,
		Clients:   cfg.Platforms,
		Rounds:    cfg.Rounds,
		EvalEvery: cfg.EvalEvery,
		EvalData:  test,
	})
	if err != nil {
		return nil, err
	}
	replicas, err := buildModels(cfg, cfg.Platforms)
	if err != nil {
		return nil, err
	}
	meters := make([]*transport.Meter, cfg.Platforms)
	clients := make([]*fedavg.Client, cfg.Platforms)
	for k := 0; k < cfg.Platforms; k++ {
		meters[k] = &transport.Meter{}
		replica := replicas[k]
		c, err := fedavg.NewClient(fedavg.ClientConfig{
			ID:         k,
			Model:      replica.Net,
			Opt:        &nn.SGD{LR: cfg.LR},
			Loss:       newLoss(),
			Shard:      shards[k],
			Batch:      batches[k],
			LocalSteps: cfg.LocalSteps,
			Rounds:     cfg.Rounds,
			EvalEvery:  cfg.EvalEvery,
			Seed:       cfg.Seed + uint64(1000+k),
			Meter:      meters[k],
		})
		if err != nil {
			return nil, err
		}
		clients[k] = c
	}
	serverStats, clientStats, err := fedavg.RunLocal(srv, clients)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Scheme:      "fedavg",
		Curve:       metrics.Curve{Label: "fedavg"},
		ModelParams: globalM.ParamCount(),
	}
	for i, ev := range serverStats.Evals {
		var bytes int64
		for k := range clientStats {
			if i < len(clientStats[k].Bytes) {
				bytes += clientStats[k].Bytes[i].TrainingBytes
			}
		}
		pt := metrics.Round{Round: ev.Round, Accuracy: ev.Accuracy, Bytes: bytes}
		if len(clientStats[0].Rounds) > ev.Round {
			pt.Loss = clientStats[0].Rounds[ev.Round].Loss
		}
		res.Curve.Append(pt)
	}
	res.FinalAccuracy = res.Curve.Final().Accuracy
	res.TrainingBytes = res.Curve.Final().Bytes
	return res, nil
}

// annotateSimTime stamps cumulative simulated wall-clock onto curve
// points given a constant per-round duration.
func annotateSimTime(c *metrics.Curve, perRound time.Duration) {
	for i := range c.Points {
		c.Points[i].SimTime = time.Duration(c.Points[i].Round+1) * perRound
	}
}

func trainTx(m *transport.Meter) int64 {
	var total int64
	for _, t := range []wire.MsgType{
		wire.MsgActivations, wire.MsgLogits, wire.MsgLossGrad, wire.MsgCutGrad,
		wire.MsgLabels, wire.MsgModelPull, wire.MsgModelPush, wire.MsgGradPush,
	} {
		total += m.TxBytesByType(t)
	}
	return total
}

func trainRx(m *transport.Meter) int64 {
	var total int64
	for _, t := range []wire.MsgType{
		wire.MsgActivations, wire.MsgLogits, wire.MsgLossGrad, wire.MsgCutGrad,
		wire.MsgLabels, wire.MsgModelPull, wire.MsgModelPush, wire.MsgGradPush,
	} {
		total += m.RxBytesByType(t)
	}
	return total
}
