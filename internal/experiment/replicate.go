package experiment

import (
	"fmt"
	"math"
)

// Replicated aggregates one scheme's outcome over several seeds —
// single-seed deltas on small workloads can be noise, so the serious
// comparisons report mean ± standard deviation.
type Replicated struct {
	Scheme string
	Seeds  []uint64

	MeanAccuracy float64
	StdAccuracy  float64
	// MeanBytes is the mean total training communication. Bytes are
	// deterministic given shapes, so StdBytes is almost always zero; it
	// is reported anyway as a sanity signal.
	MeanBytes float64
	StdBytes  float64

	Runs []*Result
}

// String renders the replicate summary compactly.
func (r *Replicated) String() string {
	return fmt.Sprintf("%s: acc %.1f%% ± %.1f, bytes %.0f ± %.0f (%d seeds)",
		r.Scheme, 100*r.MeanAccuracy, 100*r.StdAccuracy, r.MeanBytes, r.StdBytes, len(r.Seeds))
}

// Runner is any of the scheme entry points (RunSplit, RunSyncSGD,
// RunFedAvg).
type Runner func(Config) (*Result, error)

// RunReplicated executes run on cfg once per seed and aggregates.
func RunReplicated(run Runner, cfg Config, seeds []uint64) (*Replicated, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiment: RunReplicated with no seeds")
	}
	out := &Replicated{Seeds: append([]uint64(nil), seeds...)}
	accs := make([]float64, 0, len(seeds))
	bytes := make([]float64, 0, len(seeds))
	for _, seed := range seeds {
		c := cfg
		c.Seed = seed
		res, err := run(c)
		if err != nil {
			return nil, fmt.Errorf("experiment: seed %d: %w", seed, err)
		}
		out.Scheme = res.Scheme
		out.Runs = append(out.Runs, res)
		accs = append(accs, res.FinalAccuracy)
		bytes = append(bytes, float64(res.TrainingBytes))
	}
	out.MeanAccuracy, out.StdAccuracy = meanStd(accs)
	out.MeanBytes, out.StdBytes = meanStd(bytes)
	return out, nil
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}
