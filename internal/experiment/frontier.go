package experiment

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"medsplit/internal/geonet"
	"medsplit/internal/simnet"
	"medsplit/internal/wire"
)

// FrontierConfig parameterizes the consistency frontier sweep.
type FrontierConfig struct {
	// Scales lists the platform counts to sweep (default {100, 1000}).
	Scales []int
	// Rounds per session (default 6).
	Rounds int
	// Seed pins the whole sweep: data, models, WAN, compute profiles
	// and fault scripts all derive from it.
	Seed uint64
	// BaseCompute is the typical per-platform front-half compute per
	// exchange (default 5ms); stragglers run at 8× this.
	BaseCompute time.Duration
	// ServerCompute is the back-half compute per exchange (default 2ms).
	ServerCompute time.Duration
	// TrainPerPlatform sizes the corpus at this many samples per
	// platform (default 2 — the sweep measures schedules, not model
	// quality).
	TrainPerPlatform int
}

func (fc FrontierConfig) withDefaults() FrontierConfig {
	if len(fc.Scales) == 0 {
		fc.Scales = []int{100, 1000}
	}
	if fc.Rounds == 0 {
		fc.Rounds = 6
	}
	if fc.BaseCompute == 0 {
		fc.BaseCompute = 5 * time.Millisecond
	}
	if fc.ServerCompute == 0 {
		fc.ServerCompute = 2 * time.Millisecond
	}
	if fc.TrainPerPlatform == 0 {
		fc.TrainPerPlatform = 2
	}
	return fc
}

// FrontierCell is one {mode × scale × fault} measurement of the
// accuracy-vs-wall-clock frontier.
type FrontierCell struct {
	Mode      string
	Platforms int
	Fault     string
	// FinalAccuracy is the session's last evaluation.
	FinalAccuracy float64
	// WallClock is the simulated wall-clock of the whole session:
	// measured virtual elapsed for the deterministic schedules, or
	// Rounds × the analytic pipelined estimate when Analytic is set
	// (the pipelined engine's async stamps make its measured elapsed
	// run-to-run noisy; weights never are).
	WallClock time.Duration
	Analytic  bool
	// WeightDigest fingerprints the trained weights (see
	// Result.WeightDigest) so frontier runs can be diffed bit for bit.
	WeightDigest uint64
}

// frontierModes are the consistency spectrum's sweep arms, from
// strictest to loosest coordination.
func frontierModes() []struct {
	name   string
	mutate func(*Config)
} {
	return []struct {
		name   string
		mutate func(*Config)
	}{
		{"sequential", func(c *Config) {}},
		{"pipelined", func(c *Config) { c.Pipelined = true; c.PipelineDepth = 2 }},
		{"stale-1", func(c *Config) { c.BoundedStaleness = true; c.Staleness = 1 }},
		{"stale-4", func(c *Config) { c.BoundedStaleness = true; c.Staleness = 4 }},
		{"stale-16", func(c *Config) { c.BoundedStaleness = true; c.Staleness = 16 }},
		{"splitfed", func(c *Config) { c.SplitFed = true; c.L1SyncEvery = 2 }},
	}
}

// frontierFaults returns the fault axis for one scale: the compute
// profile (homogeneous or with a straggler tail) plus an optional
// deterministic churn script of transient WAN delay spikes.
func frontierFaults(fc FrontierConfig, scale int) []struct {
	name    string
	compute []time.Duration
	faults  []simnet.Fault
} {
	churn := []simnet.Fault{}
	for _, p := range []int{scale / 4, scale / 2, (3 * scale) / 4} {
		for r := 1; r <= 2; r++ {
			churn = append(churn, simnet.Fault{
				Platform: p, Round: r, Type: wire.MsgLossGrad, Dir: simnet.DirUp,
				Kind: simnet.FaultDelaySpike, Delay: 200 * time.Millisecond,
			})
		}
	}
	return []struct {
		name    string
		compute []time.Duration
		faults  []simnet.Fault
	}{
		{"none", geonet.SyntheticClinicCompute(scale, fc.Seed, fc.BaseCompute, 0), nil},
		{"stragglers", geonet.SyntheticClinicCompute(scale, fc.Seed, fc.BaseCompute, 0.1), nil},
		{"churn", geonet.SyntheticClinicCompute(scale, fc.Seed, fc.BaseCompute, 0), churn},
	}
}

// RunConsistencyFrontier sweeps the consistency spectrum — sequential,
// pipelined, bounded staleness at several caps, splitfed — across
// platform scales and fault scenarios over the SyntheticClinics WAN
// with the heterogeneous compute model, and returns one cell per
// combination: the accuracy-vs-wall-clock frontier the relaxed modes
// exist to improve. Everything derives from FrontierConfig.Seed, so
// two sweeps with equal configs return identical cells (the soak test
// enforces this).
func RunConsistencyFrontier(fc FrontierConfig) ([]FrontierCell, error) {
	fc = fc.withDefaults()
	var cells []FrontierCell
	for _, scale := range fc.Scales {
		topo, regions := geonet.SyntheticClinics(scale, fc.Seed)
		for _, fault := range frontierFaults(fc, scale) {
			for _, mode := range frontierModes() {
				cfg := Config{
					Arch:             ArchMLP,
					Classes:          4,
					TrainSamples:     fc.TrainPerPlatform * scale,
					TestSamples:      48,
					Platforms:        scale,
					Rounds:           fc.Rounds,
					TotalBatch:       scale, // one sample per platform per round
					EvalEvery:        fc.Rounds,
					Seed:             fc.Seed,
					Topology:         topo,
					Regions:          regions,
					SimWAN:           true,
					SimFaults:        fault.faults,
					SimComputeServer: fc.ServerCompute,
					SimCompute:       fault.compute,
				}
				mode.mutate(&cfg)
				res, err := RunSplit(cfg)
				if err != nil {
					return nil, fmt.Errorf("frontier %s/%d/%s: %w", mode.name, scale, fault.name, err)
				}
				cell := FrontierCell{
					Mode:          mode.name,
					Platforms:     scale,
					Fault:         fault.name,
					FinalAccuracy: res.FinalAccuracy,
					WallClock:     res.SimElapsed,
					WeightDigest:  res.WeightDigest,
				}
				if cfg.Pipelined {
					cell.WallClock = time.Duration(cfg.Rounds) * res.RoundTime
					cell.Analytic = true
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}

// FrontierTable renders the sweep as the accuracy-vs-wall-clock table.
func FrontierTable(cells []FrontierCell) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "mode\tplatforms\tfault\taccuracy\twall-clock\tdigest")
	for _, c := range cells {
		clock := c.WallClock.Round(time.Millisecond).String()
		if c.Analytic {
			clock += " (analytic)"
		}
		fmt.Fprintf(w, "%s\t%d\t%s\t%.3f\t%s\t%#x\n",
			c.Mode, c.Platforms, c.Fault, c.FinalAccuracy, clock, c.WeightDigest)
	}
	w.Flush()
	return sb.String()
}
