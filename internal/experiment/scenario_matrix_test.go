package experiment

import (
	"fmt"
	"testing"
	"time"

	"medsplit/internal/geonet"
	"medsplit/internal/simnet"
	"medsplit/internal/transport/testutil"
	"medsplit/internal/wire"
)

// matrixBase is the shared workload of the scenario matrix: small
// enough that the full mode × codec × fault sweep stays in test-suite
// territory, large enough that every protocol phase (train, eval) and
// codec path runs for real.
func matrixBase(topo *geonet.Topology, regions []geonet.Region) Config {
	return Config{
		Arch:         ArchMLP,
		Classes:      4,
		TrainSamples: 96,
		TestSamples:  24,
		Platforms:    3,
		Rounds:       6,
		TotalBatch:   12,
		EvalEvery:    6,
		Seed:         77,
		Topology:     topo,
		Regions:      regions,
	}
}

// matrixTopology is a 3-site slice of WAN parameter space: metro,
// regional and intercontinental links.
func matrixTopology() (*geonet.Topology, []geonet.Region) {
	topo := &geonet.Topology{
		Server: "seoul-dc",
		Links: map[geonet.Region]geonet.Link{
			"metro":    {LatencyMs: 2, Mbps: 1000},
			"regional": {LatencyMs: 12, Mbps: 200},
			"overseas": {LatencyMs: 95, Mbps: 100},
		},
	}
	return topo, []geonet.Region{"metro", "regional", "overseas"}
}

// TestScenarioMatrix is the end-to-end scenario sweep the simulated
// WAN exists for: {sequential, concat, pipelined, bounded-staleness,
// splitfed} × {raw, f16, int8, top-k} × {no fault, mid-round dropout +
// rejoin}, each simnet run compared against its pipe-transport
// reference by weight digest — bit-identical training, regardless of
// link parameters, codec quantization or a recovered dropout. The
// relaxed modes hold the same cross-transport bar because their wave
// order is fixed, not arrival-driven. The dropout arms run under the
// sequential scheduler (the recovery machinery's constraint) with the
// WaitForRejoin policy, whose contract *is* bit-identity with the
// undisturbed run.
func TestScenarioMatrix(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	topo, regions := matrixTopology()

	modes := []struct {
		name      string
		mutate    func(*Config)
		canRejoin bool
	}{
		{"sequential", func(c *Config) {}, true},
		{"concat", func(c *Config) { c.ConcatRounds = true }, false},
		{"pipelined", func(c *Config) { c.Pipelined = true; c.PipelineDepth = 2 }, false},
		{"stale-2", func(c *Config) { c.BoundedStaleness = true; c.Staleness = 2 }, false},
		{"splitfed", func(c *Config) { c.SplitFed = true; c.L1SyncEvery = 2 }, false},
	}
	codecs := []string{"raw", "f16", "int8", "topk-0.5"}
	faults := []struct {
		name   string
		faults []simnet.Fault
		rejoin string
	}{
		{"no-fault", nil, ""},
		{"dropout-wait-rejoin", []simnet.Fault{
			{Platform: 1, Round: 3, Type: wire.MsgLossGrad, Dir: simnet.DirUp},
		}, "wait"},
		{"partition-wait-rejoin", []simnet.Fault{
			{Platform: 1, Round: 3, Type: wire.MsgActivations, Dir: simnet.DirUp},
			{Platform: 2, Round: 3, Type: wire.MsgActivations, Dir: simnet.DirUp, FailDials: 2},
		}, "wait"},
	}

	for _, mode := range modes {
		for _, codec := range codecs {
			// The pipe-transport reference run for this mode × codec cell.
			refCfg := matrixBase(topo, regions)
			refCfg.Codec = codec
			mode.mutate(&refCfg)
			ref, err := RunSplit(refCfg)
			if err != nil {
				t.Fatalf("%s/%s reference: %v", mode.name, codec, err)
			}
			if ref.WeightDigest == 0 {
				t.Fatalf("%s/%s reference produced a zero weight digest", mode.name, codec)
			}
			for _, fault := range faults {
				if fault.rejoin != "" && !mode.canRejoin {
					continue // dropout recovery is sequential-only
				}
				name := fmt.Sprintf("%s/%s/%s", mode.name, codec, fault.name)
				t.Run(name, func(t *testing.T) {
					cfg := matrixBase(topo, regions)
					cfg.Codec = codec
					mode.mutate(&cfg)
					cfg.SimWAN = true
					cfg.SimJitter = 0.2
					cfg.SimFaults = fault.faults
					cfg.SimRejoin = fault.rejoin
					res, err := RunSplit(cfg)
					if err != nil {
						t.Fatal(err)
					}
					if res.WeightDigest != ref.WeightDigest {
						t.Fatalf("weights diverged from the pipe reference: digest %#x vs %#x",
							res.WeightDigest, ref.WeightDigest)
					}
					if res.SimElapsed <= 0 {
						t.Fatalf("simulated run reported no virtual elapsed time")
					}
					if res.FinalAccuracy != ref.FinalAccuracy {
						t.Fatalf("accuracy diverged: %v vs %v", res.FinalAccuracy, ref.FinalAccuracy)
					}
				})
			}
		}
	}
}

// The lockstep modes' virtual timelines are fully deterministic: the
// same config re-run yields the same SimElapsed to the nanosecond
// (weights are compared digest-for-digest too, though that holds in
// every mode).
func TestSimElapsedDeterministicLockstep(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	topo, regions := matrixTopology()
	for _, concat := range []bool{false, true} {
		name := "sequential"
		if concat {
			name = "concat"
		}
		t.Run(name, func(t *testing.T) {
			run := func() *Result {
				cfg := matrixBase(topo, regions)
				cfg.ConcatRounds = concat
				cfg.SimWAN = true
				cfg.SimJitter = 0.3
				res, err := RunSplit(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			a, b := run(), run()
			if a.SimElapsed != b.SimElapsed {
				t.Fatalf("virtual timelines diverged: %v vs %v", a.SimElapsed, b.SimElapsed)
			}
			if a.WeightDigest != b.WeightDigest {
				t.Fatalf("weight digests diverged: %#x vs %#x", a.WeightDigest, b.WeightDigest)
			}
		})
	}
}

// Config validation for the simulation surface.
func TestSimWANConfigValidation(t *testing.T) {
	topo, regions := matrixTopology()
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"SimWAN without topology", func(c *Config) { c.Topology = nil }},
		{"SimWAN with wrong region count", func(c *Config) { c.Regions = c.Regions[:1] }},
		{"jitter out of range", func(c *Config) { c.SimJitter = 1.5 }},
		{"faults without SimWAN", func(c *Config) {
			c.SimWAN = false
			c.SimFaults = []simnet.Fault{{Platform: 0, Round: 1}}
		}},
		{"unknown rejoin policy", func(c *Config) { c.SimRejoin = "retry" }},
		{"rejoin with concat", func(c *Config) { c.SimRejoin = "wait"; c.ConcatRounds = true }},
		{"rejoin with pipelined", func(c *Config) { c.SimRejoin = "wait"; c.Pipelined = true }},
		{"rejoin with bounded staleness", func(c *Config) {
			c.SimRejoin = "wait"
			c.BoundedStaleness = true
			c.Staleness = 1
		}},
		{"staleness cap without the mode", func(c *Config) { c.Staleness = 2 }},
		{"negative staleness cap", func(c *Config) { c.BoundedStaleness = true; c.Staleness = -1 }},
		{"splitfed without averaging period", func(c *Config) { c.SplitFed = true }},
		{"two relaxed modes at once", func(c *Config) {
			c.BoundedStaleness = true
			c.SplitFed = true
			c.L1SyncEvery = 2
		}},
		{"splitfed with replicas", func(c *Config) {
			c.SplitFed = true
			c.L1SyncEvery = 2
			c.Replicas = 1
		}},
		{"compute profile without topology", func(c *Config) {
			c.SimWAN = false
			c.Topology = nil
			c.Regions = nil
			c.SimCompute = []time.Duration{time.Millisecond, time.Millisecond, time.Millisecond}
		}},
		{"compute profile wrong length", func(c *Config) { c.SimCompute = []time.Duration{time.Millisecond} }},
		{"negative platform compute", func(c *Config) {
			c.SimCompute = []time.Duration{time.Millisecond, -time.Millisecond, time.Millisecond}
		}},
		{"negative server compute", func(c *Config) { c.SimComputeServer = -time.Millisecond }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := matrixBase(topo, regions)
			cfg.SimWAN = true
			tc.mutate(&cfg)
			if _, err := RunSplit(cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}
