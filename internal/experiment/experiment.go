// Package experiment wires datasets, models, the split-learning engine
// and the baselines into reproducible end-to-end runs, and regenerates
// the paper's evaluation artifacts: the Fig. 4 communication/accuracy
// comparison (measured, on the scaled-down trainable models) and the
// data-imbalance ablation behind the proportional-minibatch proposal.
package experiment

import (
	"fmt"
	"time"

	"medsplit/internal/dataset"
	"medsplit/internal/geonet"
	"medsplit/internal/metrics"
	"medsplit/internal/models"
	"medsplit/internal/nn"
	"medsplit/internal/rng"
	"medsplit/internal/simnet"
)

// Arch selects the trainable model family.
type Arch string

// Architectures available to experiments.
const (
	ArchMLP    Arch = "mlp"
	ArchVGG    Arch = "vgg-lite"
	ArchResNet Arch = "resnet-lite"
)

// Sharding selects how training data is distributed across platforms.
type Sharding string

// Sharding strategies.
const (
	ShardingIID       Sharding = "iid"
	ShardingPowerLaw  Sharding = "powerlaw"
	ShardingDirichlet Sharding = "dirichlet"
)

// Config describes one training run (any scheme).
type Config struct {
	// Arch picks the model family (default ArchVGG).
	Arch Arch
	// Classes is the label count (10 or 100 in the paper's evaluation).
	Classes int
	// Width scales the model (channel width; default 8).
	Width int
	// TrainSamples / TestSamples size the synthetic corpus.
	TrainSamples, TestSamples int
	// Noise is the dataset difficulty knob (default 0.35).
	Noise float32
	// Platforms is the number of hospitals (k).
	Platforms int
	// Rounds is the number of synchronous training rounds.
	Rounds int
	// TotalBatch is the per-round sample budget across all platforms.
	TotalBatch int
	// Proportional applies the paper's imbalance mitigation: batch
	// sizes proportional to shard sizes. Otherwise batches are uniform.
	Proportional bool
	// Sharding picks the data distribution (default IID).
	Sharding Sharding
	// Alpha parameterizes power-law or Dirichlet sharding.
	Alpha float64
	// LR is the SGD learning rate (default 0.05).
	LR float32
	// LocalSteps applies to FedAvg only (default 1).
	LocalSteps int
	// EvalEvery measures accuracy every so many rounds (default
	// Rounds/5, at least 1).
	EvalEvery int
	// Seed makes the whole run reproducible.
	Seed uint64
	// Cut overrides the model's default split point (layer index; 0 =
	// the model's DefaultCut, i.e. the paper's first-hidden-layer cut).
	// Split scheme only.
	Cut int
	// LabelSharing switches the split protocol to the 2-message
	// label-sharing ablation.
	LabelSharing bool
	// L1SyncEvery periodically averages platform L1 weights through the
	// server (0 = the paper's default of init-only synchronization).
	L1SyncEvery int
	// ConcatRounds uses the server's concatenated round mode instead of
	// sequential per-platform steps.
	ConcatRounds bool
	// Pipelined uses the server's pipelined round mode: sequential
	// optimizer semantics with WAN I/O overlapped against server
	// compute. Mutually exclusive with ConcatRounds. Split scheme only.
	Pipelined bool
	// PipelineDepth bounds the in-flight rounds in pipelined mode
	// (default 2, which also enables the platforms' shadow-front
	// overlap; 1 is bit-identical to sequential scheduling).
	PipelineDepth int
	// PipelineIOBudget caps the pipelined server's dedicated I/O
	// goroutines (two per overlapped connection); connections beyond
	// the budget run synchronously with identical results. 0 = no cap.
	// Requires Pipelined. See core.ServerConfig.IOGoroutineBudget.
	PipelineIOBudget int
	// BoundedStaleness uses the server's bounded-staleness round mode:
	// per-platform updates apply as each platform's exchange arrives, in
	// platform-major windows of Staleness+1 rounds. Mutually exclusive
	// with ConcatRounds, Pipelined and SplitFed; incompatible with
	// checkpoints, resume, dropout recovery and replication (the relaxed
	// scheduler runs ahead of synchronized round boundaries). Split
	// scheme only.
	BoundedStaleness bool
	// Staleness is the bounded-staleness cap K: a platform may run at
	// most K rounds ahead of the slowest platform's last applied
	// update. K=0 is provably bit-identical to sequential scheduling.
	// Requires BoundedStaleness.
	Staleness int
	// SplitFed runs the SplitFed-style local-parallel mode: platforms
	// train front halves through whole averaging periods back to back,
	// and every L1SyncEvery rounds the server averages the fronts
	// (fedavg's aggregation rule) before anyone continues. Requires
	// L1SyncEvery >= 1; same exclusions as BoundedStaleness.
	SplitFed bool
	// Codec names the activation-path compression codec ("raw", "f16",
	// "int8", "topk-<frac>"; default "raw"). Split scheme only.
	Codec string
	// CheckpointDir, when set, makes every party (server and all
	// platforms) write session snapshots there. Split scheme only.
	CheckpointDir string
	// CheckpointEvery writes snapshots every so many completed rounds
	// (requires CheckpointDir). Negative values are rejected.
	CheckpointEvery int
	// ResumeFrom, when set, restores the whole session — server and
	// every platform — from the snapshots in the given directory (a
	// previous run's CheckpointDir) and continues training from the
	// checkpointed round. The resumed trajectory is bit-identical to an
	// uninterrupted run for sequential, concat and depth-1 pipelined
	// scheduling. Split scheme only.
	ResumeFrom string
	// Augment enables platform-local random crop (pad 4) and horizontal
	// flip on training minibatches. Split scheme, image models only.
	Augment bool
	// Topology, when set with Regions, adds simulated wall-clock
	// estimates to the result curves.
	Topology *geonet.Topology
	// Regions maps each platform to a topology region.
	Regions []geonet.Region
	// SimWAN runs the split session over the deterministic simulated
	// WAN (internal/simnet) built from Topology and Regions instead of
	// in-process pipes: every protocol byte crosses a link with the
	// region's latency and bandwidth on a virtual clock, and the result
	// carries the measured virtual elapsed time (Result.SimElapsed)
	// next to the analytic estimate (Result.RoundTime). Split scheme
	// only; requires Topology and Regions.
	SimWAN bool
	// SimJitter adds up to this fraction of seeded per-message jitter
	// to simulated transfers (see simnet.Options.Jitter). Requires
	// SimWAN.
	SimJitter float64
	// SimComputeServer charges the simulated server this much back-half
	// compute (forward+backward+step) per received activations message,
	// and folds the same duration into the analytic round-time
	// estimators. Requires Topology.
	SimComputeServer time.Duration
	// SimCompute is the per-platform front-half compute profile: entry
	// k is charged to platform k's virtual clock each time it ships a
	// loss gradient (see simnet.Compute). Heterogeneous entries model
	// compute stragglers. Length must equal Platforms; the analytic
	// estimators use the mean (which preserves the sequential sum
	// exactly). Requires Topology.
	SimCompute []time.Duration
	// SimFaults scripts deterministic link failures into the simulated
	// WAN (drop platform k at round r, partitions, swallowed payloads).
	// Requires SimWAN; without SimRejoin a triggered fault is fatal to
	// the session, exactly like an unhandled WAN drop.
	SimFaults []simnet.Fault
	// SimRejoin enables dropout recovery over the simulated WAN:
	// "wait" (bit-identical WaitForRejoin) or "proceed"
	// (ProceedWithout). Platforms redial through the simulated network
	// and rejoin via the broker. Requires SimWAN and sequential
	// scheduling (the recovery machinery's constraint).
	SimRejoin string
	// Replicas runs this many in-process warm followers behind the
	// split server: every training step is appended to a write-ahead
	// log and streamed to the followers before its cut gradient is
	// acked, so the aggregation tier survives a leader crash. Split
	// scheme only; requires sequential or depth-1 pipelined scheduling.
	Replicas int
	// WALDir is where the replication tier keeps its write-ahead logs
	// (a subdirectory for the leader and one per follower). Empty with
	// Replicas > 0 uses a private temporary directory that is removed
	// after the run. Requires Replicas.
	WALDir string
	// KillLeaderAt, when positive, kills the leader at that round — the
	// server process dies while sending platform 0's cut gradient over
	// the simulated WAN, severing every link at once — and fails the
	// session over: the most caught-up follower promotes, the platforms
	// redial into it, and training finishes bit-identically to an
	// undisturbed run. Requires Replicas >= 1, SimWAN, and
	// 0 < KillLeaderAt < Rounds.
	KillLeaderAt int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Arch == "" {
		c.Arch = ArchVGG
	}
	if c.Classes == 0 {
		c.Classes = 10
	}
	if c.Width == 0 {
		c.Width = 8
	}
	if c.TrainSamples == 0 {
		c.TrainSamples = 800
	}
	if c.TestSamples == 0 {
		c.TestSamples = 200
	}
	if c.Noise == 0 {
		c.Noise = 0.35
	}
	if c.Platforms == 0 {
		c.Platforms = 4
	}
	if c.Rounds == 0 {
		c.Rounds = 60
	}
	if c.TotalBatch == 0 {
		c.TotalBatch = 8 * c.Platforms
	}
	if c.Sharding == "" {
		c.Sharding = ShardingIID
	}
	if c.Alpha == 0 {
		c.Alpha = 1.2
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.LocalSteps == 0 {
		c.LocalSteps = 1
	}
	if c.EvalEvery == 0 {
		c.EvalEvery = c.Rounds / 5
		if c.EvalEvery < 1 {
			c.EvalEvery = 1
		}
	}
	if c.Pipelined && c.PipelineDepth == 0 {
		c.PipelineDepth = 2
	}
	return c
}

// validate rejects inconsistent configurations. All cross-field Config
// rules live here; the Run* entry points call it right after
// withDefaults.
func (c Config) validate() error {
	modes := 0
	for _, on := range []bool{c.ConcatRounds, c.Pipelined, c.BoundedStaleness, c.SplitFed} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		return fmt.Errorf("experiment: ConcatRounds, Pipelined, BoundedStaleness and SplitFed are mutually exclusive")
	}
	if c.Staleness != 0 && !c.BoundedStaleness {
		return fmt.Errorf("experiment: Staleness %d without BoundedStaleness", c.Staleness)
	}
	if c.Staleness < 0 {
		return fmt.Errorf("experiment: negative Staleness %d", c.Staleness)
	}
	if c.SplitFed && c.L1SyncEvery < 1 {
		return fmt.Errorf("experiment: SplitFed requires L1SyncEvery >= 1")
	}
	if c.BoundedStaleness || c.SplitFed {
		if c.CheckpointDir != "" || c.ResumeFrom != "" {
			return fmt.Errorf("experiment: relaxed round modes do not support checkpoints or resume")
		}
		if c.SimRejoin != "" {
			return fmt.Errorf("experiment: relaxed round modes do not support dropout recovery")
		}
		if c.Replicas > 0 {
			return fmt.Errorf("experiment: relaxed round modes do not support replication")
		}
	}
	if c.PipelineDepth > 0 && !c.Pipelined {
		return fmt.Errorf("experiment: PipelineDepth %d without Pipelined", c.PipelineDepth)
	}
	if c.PipelineIOBudget != 0 && !c.Pipelined {
		return fmt.Errorf("experiment: PipelineIOBudget %d without Pipelined", c.PipelineIOBudget)
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("experiment: negative CheckpointEvery %d", c.CheckpointEvery)
	}
	if c.CheckpointEvery > 0 && c.CheckpointDir == "" {
		return fmt.Errorf("experiment: CheckpointEvery without CheckpointDir")
	}
	if c.Platforms <= 0 {
		return fmt.Errorf("experiment: %d platforms", c.Platforms)
	}
	if c.Rounds <= 0 {
		return fmt.Errorf("experiment: %d rounds", c.Rounds)
	}
	if c.SimWAN {
		if c.Topology == nil {
			return fmt.Errorf("experiment: SimWAN without a Topology")
		}
		if len(c.Regions) != c.Platforms {
			return fmt.Errorf("experiment: SimWAN with %d regions for %d platforms", len(c.Regions), c.Platforms)
		}
		if c.SimJitter < 0 || c.SimJitter >= 1 {
			return fmt.Errorf("experiment: SimJitter %v outside [0,1)", c.SimJitter)
		}
	} else if c.SimJitter != 0 || len(c.SimFaults) > 0 || c.SimRejoin != "" {
		return fmt.Errorf("experiment: SimJitter/SimFaults/SimRejoin require SimWAN")
	}
	if c.SimComputeServer < 0 {
		return fmt.Errorf("experiment: negative SimComputeServer %v", c.SimComputeServer)
	}
	if c.SimComputeServer > 0 && c.Topology == nil {
		return fmt.Errorf("experiment: SimComputeServer without a Topology")
	}
	if len(c.SimCompute) > 0 {
		if c.Topology == nil {
			return fmt.Errorf("experiment: SimCompute without a Topology")
		}
		if len(c.SimCompute) != c.Platforms {
			return fmt.Errorf("experiment: %d SimCompute entries for %d platforms", len(c.SimCompute), c.Platforms)
		}
		for k, d := range c.SimCompute {
			if d < 0 {
				return fmt.Errorf("experiment: negative SimCompute %v for platform %d", d, k)
			}
		}
	}
	switch c.SimRejoin {
	case "", "wait", "proceed":
	default:
		return fmt.Errorf("experiment: SimRejoin %q (want \"wait\" or \"proceed\")", c.SimRejoin)
	}
	if c.SimRejoin != "" && (c.ConcatRounds || c.Pipelined) {
		return fmt.Errorf("experiment: SimRejoin requires sequential scheduling")
	}
	if c.Replicas < 0 {
		return fmt.Errorf("experiment: negative Replicas %d", c.Replicas)
	}
	if c.Replicas > 0 {
		if c.ConcatRounds {
			return fmt.Errorf("experiment: Replicas with ConcatRounds (replication needs per-step records)")
		}
		if c.Pipelined && c.PipelineDepth >= 2 {
			return fmt.Errorf("experiment: Replicas with PipelineDepth %d (failover needs sequential or depth-1 scheduling)", c.PipelineDepth)
		}
	}
	if c.WALDir != "" && c.Replicas == 0 {
		return fmt.Errorf("experiment: WALDir without Replicas")
	}
	if c.KillLeaderAt != 0 {
		if c.Replicas < 1 {
			return fmt.Errorf("experiment: KillLeaderAt without Replicas")
		}
		if !c.SimWAN {
			return fmt.Errorf("experiment: KillLeaderAt requires SimWAN")
		}
		if c.KillLeaderAt < 0 || c.KillLeaderAt >= c.Rounds {
			return fmt.Errorf("experiment: KillLeaderAt %d outside (0,%d)", c.KillLeaderAt, c.Rounds)
		}
		if c.SimRejoin != "" {
			return fmt.Errorf("experiment: KillLeaderAt and SimRejoin are mutually exclusive (failover owns the redial path)")
		}
	}
	return nil
}

// BuildModel constructs one model instance for the config. Calling it
// repeatedly with the same cfg yields identically initialized replicas
// (cmd/splitserver and cmd/splitplatform rely on this to agree on
// weights across processes).
func BuildModel(c Config) (*models.Model, error) {
	r := rng.New(c.Seed + 0xA11CE)
	switch c.Arch {
	case ArchMLP:
		return models.MLP(3*32*32, []int{64}, c.Classes, r), nil
	case ArchVGG:
		return models.VGGLite(c.Classes, c.Width, r), nil
	case ArchResNet:
		return models.ResNetLite(c.Classes, c.Width, r), nil
	default:
		return nil, fmt.Errorf("experiment: unknown arch %q", c.Arch)
	}
}

// BuildData generates the corpus and shards it across platforms,
// returning the per-platform training shards, the test set, and the
// per-platform batch sizes. It is deterministic in cfg.Seed, so
// separate processes derive identical shards.
func BuildData(c Config) (shards []*dataset.Dataset, test *dataset.Dataset, batches []int, err error) {
	train, test := dataset.SynthCIFAR(dataset.SynthConfig{
		Classes: c.Classes,
		Train:   c.TrainSamples,
		Test:    c.TestSamples,
		Noise:   c.Noise,
		Seed:    c.Seed + 0xDA7A,
	})
	// MLP consumes flat vectors.
	if c.Arch == ArchMLP {
		train = flattenDataset(train)
		test = flattenDataset(test)
	}
	r := rng.New(c.Seed + 0x54A4D)
	var idx [][]int
	switch c.Sharding {
	case ShardingIID:
		idx = dataset.ShardIID(train.Len(), c.Platforms, r)
	case ShardingPowerLaw:
		idx = dataset.ShardPowerLaw(train.Len(), c.Platforms, c.Alpha, r)
	case ShardingDirichlet:
		idx = dataset.ShardDirichlet(train.Labels, c.Classes, c.Platforms, c.Alpha, r)
	default:
		return nil, nil, nil, fmt.Errorf("experiment: unknown sharding %q", c.Sharding)
	}
	shards = make([]*dataset.Dataset, c.Platforms)
	sizes := make([]int, c.Platforms)
	for k := range idx {
		shards[k] = train.Subset(idx[k])
		sizes[k] = len(idx[k])
	}
	if c.Proportional {
		batches = dataset.ProportionalBatches(sizes, c.TotalBatch)
	} else {
		batches = dataset.UniformBatches(c.Platforms, c.TotalBatch)
	}
	return shards, test, batches, nil
}

func flattenDataset(d *dataset.Dataset) *dataset.Dataset {
	n := d.X.Dim(0)
	return &dataset.Dataset{X: d.X.Reshape(n, d.X.Size()/n), Labels: d.Labels, Classes: d.Classes}
}

// Result is one scheme's outcome on a config.
type Result struct {
	Scheme        string
	Curve         metrics.Curve
	FinalAccuracy float64
	TrainingBytes int64
	// RoundTime is the analytically estimated wall-clock per round
	// (zero without a topology).
	RoundTime time.Duration
	// SimElapsed is the virtual wall-clock the simulated WAN measured
	// for the whole run (zero unless SimWAN) — the executable
	// counterpart of RoundTime's closed-form estimate. It covers the
	// network schedule plus, when SimComputeServer/SimCompute are set,
	// the per-exchange compute charges, so a compute straggler slows
	// the measured session exactly like a slow link does.
	SimElapsed time.Duration
	// WeightDigest is a 64-bit FNV-1a digest over every final model
	// parameter's raw float bits (platform fronts in id order, then the
	// server back). Two runs that trained bit-identically share it;
	// the differential scenario tests compare digests across
	// transports, codecs and fault scripts. Split scheme only.
	WeightDigest uint64
	// ModelParams is the trainable scalar count, for context in reports.
	ModelParams int
	// InferP50 / InferP99 are client-observed per-request latency
	// percentiles from the serving load harness (RunServeLoad): real
	// wall-clock around each split-inference round trip, so they fold
	// in batching delay and compute-gate queueing, not simulated WAN
	// time (SimElapsed carries that). Zero outside serving runs.
	InferP50, InferP99 time.Duration
	// InferReqPerSec is the achieved request throughput of the load run.
	InferReqPerSec float64
	// InferRequests is the number of requests the load run completed.
	InferRequests int
	// InferBatches is how many back-half forwards served those
	// requests; InferRequests/InferBatches is the achieved dynamic
	// batching factor.
	InferBatches int64
}

// simTime annotates curve points with cumulative simulated time when a
// topology is configured. upPerRound/downPerRound are per-platform
// per-round byte estimates.
func (c Config) simTime(up, down []int64) (time.Duration, error) {
	if c.Topology == nil || len(c.Regions) == 0 {
		return 0, nil
	}
	if len(c.Regions) != c.Platforms {
		return 0, fmt.Errorf("experiment: %d regions for %d platforms", len(c.Regions), c.Platforms)
	}
	return c.Topology.RoundTime(c.Regions, up, down, 0)
}

// platformComputeMean is the analytic estimators' scalar stand-in for
// the per-platform compute profile. The sequential estimator sums
// PlatformCompute once per platform, so the mean reproduces the
// heterogeneous sum exactly; the pipelined schedule walk treats it as
// an approximation.
func (c Config) platformComputeMean() time.Duration {
	if len(c.SimCompute) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range c.SimCompute {
		total += d
	}
	return total / time.Duration(len(c.SimCompute))
}

// newLoss returns the task loss; one place to change if the paper's
// task shifts. Every party gets its own instance: the reusing variant
// holds per-instance gradient scratch, so sharing one across goroutines
// would race.
func newLoss() nn.Loss { return &nn.ReusingSoftmaxCrossEntropy{} }
