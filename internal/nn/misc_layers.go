package nn

import (
	"fmt"

	"medsplit/internal/rng"
	"medsplit/internal/tensor"
)

// Flatten reshapes [n, d1, d2, ...] into [n, d1*d2*...]. It bridges the
// convolutional trunk and the dense classifier head.
type Flatten struct {
	name    string
	inShape []int
}

var _ Layer = (*Flatten)(nil)

// NewFlatten builds the layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name returns the layer name.
func (f *Flatten) Name() string { return f.name }

// Forward flattens all but the leading (batch) dimension.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() < 2 {
		panic(fmt.Sprintf("nn: %s: Flatten input %v, want rank >= 2", f.name, x.Shape()))
	}
	if train {
		f.inShape = x.Shape()
	}
	n := x.Dim(0)
	return x.Reshape(n, x.Size()/n)
}

// Backward restores the cached input shape.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if f.inShape == nil {
		panic(fmt.Sprintf("nn: %s: Backward before train-mode Forward", f.name))
	}
	return grad.Reshape(f.inShape...)
}

// Params returns nil.
func (f *Flatten) Params() []*Param { return nil }

// Dropout randomly zeroes activations during training (inverted dropout:
// survivors are scaled by 1/(1-rate) so eval mode is the identity).
type Dropout struct {
	name string
	rate float32
	r    *rng.RNG
	mask []float32
}

var _ Layer = (*Dropout)(nil)

// NewDropout builds a dropout layer with the given drop rate in [0, 1).
func NewDropout(name string, rate float32, r *rng.RNG) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: %s: dropout rate %v out of [0,1)", name, rate))
	}
	return &Dropout{name: name, rate: rate, r: r}
}

// Name returns the layer name.
func (d *Dropout) Name() string { return d.name }

// Forward drops activations in train mode and is the identity otherwise.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.rate == 0 {
		return x
	}
	keep := 1 - d.rate
	scale := 1 / keep
	out := tensor.New(x.Shape()...)
	mask := make([]float32, x.Size())
	xd, od := x.Data(), out.Data()
	for i := range xd {
		if d.r.Float32() < keep {
			mask[i] = scale
			od[i] = xd[i] * scale
		}
	}
	d.mask = mask
	return out
}

// Backward applies the same mask to the gradient.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.rate == 0 {
		return grad
	}
	if d.mask == nil {
		panic(fmt.Sprintf("nn: %s: Backward before train-mode Forward", d.name))
	}
	dx := tensor.New(grad.Shape()...)
	gd, dd := grad.Data(), dx.Data()
	for i, m := range d.mask {
		dd[i] = gd[i] * m
	}
	return dx
}

// Params returns nil.
func (d *Dropout) Params() []*Param { return nil }

// Residual computes body(x) + skip(x), the building block of ResNet-style
// models. A nil skip means the identity shortcut; otherwise skip is
// typically a 1×1 strided convolution matching the body's output shape.
type Residual struct {
	name string
	body Layer
	skip Layer // nil = identity
}

var _ Layer = (*Residual)(nil)

// NewResidual builds a residual block.
func NewResidual(name string, body, skip Layer) *Residual {
	return &Residual{name: name, body: body, skip: skip}
}

// Name returns the block name.
func (r *Residual) Name() string { return r.name }

// Forward computes body(x) + skip(x).
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := r.body.Forward(x, train)
	var sc *tensor.Tensor
	if r.skip != nil {
		sc = r.skip.Forward(x, train)
	} else {
		sc = x
	}
	if !tensor.SameShape(out, sc) {
		panic(fmt.Sprintf("nn: %s: residual shape mismatch body %v vs skip %v", r.name, out.Shape(), sc.Shape()))
	}
	return tensor.Add(out, sc)
}

// Backward routes the gradient through both branches and sums the input
// gradients.
func (r *Residual) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := r.body.Backward(grad)
	if r.skip != nil {
		dx = tensor.Add(dx, r.skip.Backward(grad))
	} else {
		dx = tensor.Add(dx, grad)
	}
	return dx
}

// Params returns the parameters of both branches.
func (r *Residual) Params() []*Param {
	out := append([]*Param(nil), r.body.Params()...)
	if r.skip != nil {
		out = append(out, r.skip.Params()...)
	}
	return out
}
