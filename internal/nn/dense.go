package nn

import (
	"fmt"

	"medsplit/internal/rng"
	"medsplit/internal/tensor"
)

// Dense is a fully connected layer: y = x·W + b for x of shape
// [batch, in].
//
// The output and input-gradient tensors are layer-owned scratch reused
// across calls (same lifetime contract as Conv2D's scratch): a result
// is valid until the layer's next Forward/Backward, which every
// training and evaluation loop in this codebase satisfies — consumers
// read a layer's output before driving the next batch through it.
type Dense struct {
	name string
	w    *Param // [in, out]
	b    *Param // [out]

	x  *tensor.Tensor // cached input for Backward
	y  *tensor.Tensor // forward output scratch
	dx *tensor.Tensor // backward input-gradient scratch

	// wf16 is a half-precision pack of W used by eval-mode Forward when
	// set (see EnableF16). It is a snapshot: training steps do not
	// refresh it, so it belongs only on frozen inference instances.
	wf16 *tensor.F16Matrix
}

var _ Layer = (*Dense)(nil)

// NewDense builds a fully connected layer with He initialization (the
// right default for the ReLU networks used throughout this repo).
func NewDense(name string, in, out int, r *rng.RNG) *Dense {
	w := tensor.New(in, out)
	w.HeInit(r, in)
	return &Dense{
		name: name,
		w:    NewParam(name+".w", w),
		b:    NewParam(name+".b", tensor.New(out)),
	}
}

// Name returns the layer name.
func (d *Dense) Name() string { return d.name }

// In returns the input width.
func (d *Dense) In() int { return d.w.W.Dim(0) }

// Out returns the output width.
func (d *Dense) Out() int { return d.w.W.Dim(1) }

// EnableF16 snapshots W into half-precision storage and switches
// eval-mode Forward onto the f16-weight GEMM: half the weight-memory
// traffic, f32 accumulation, output within one f16 rounding of the
// f32 path per weight read. Training forwards keep using the full f32
// weights and do NOT refresh the snapshot — call EnableF16 only on
// frozen inference instances (the serving tier re-packs after every
// checkpoint reload).
func (d *Dense) EnableF16() {
	d.wf16 = tensor.PackF16(d.w.W)
}

// Forward computes x·W + b.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 {
		panic(fmt.Sprintf("nn: %s: Dense input must be rank-2, got %v", d.name, x.Shape()))
	}
	if train {
		d.x = x
	}
	d.y = tensor.EnsureShape(d.y, x.Dim(0), d.w.W.Dim(1))
	if !train && d.wf16 != nil {
		tensor.MatMulF16Into(d.y, x, d.wf16)
	} else {
		tensor.MatMulInto(d.y, x, d.w.W)
	}
	d.y.AddRowVector(d.b.W)
	return d.y
}

// Backward accumulates dW = xᵀ·dy and db = Σ rows(dy), returning
// dx = dy·Wᵀ. Both parameter gradients accumulate in place through the
// fused Acc kernels, so no temporary product tensors are allocated.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.x == nil {
		panic(fmt.Sprintf("nn: %s: Backward before train-mode Forward", d.name))
	}
	tensor.MatMulTAAcc(d.w.G, d.x, grad)
	tensor.SumRowsAcc(d.b.G, grad)
	d.dx = tensor.EnsureShape(d.dx, grad.Dim(0), d.w.W.Dim(0))
	return tensor.MatMulTBInto(d.dx, grad, d.w.W)
}

// Params returns the weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }
