package nn

import (
	"math"
	"testing"

	"medsplit/internal/rng"
	"medsplit/internal/tensor"
)

func randQInput(r *rng.RNG, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	d := t.Data()
	for i := range d {
		d[i] = float32(r.Float64()*2 - 1)
	}
	return t
}

func buildMLP(r *rng.RNG) *Sequential {
	return NewSequential("mlp",
		NewDense("fc1", 32, 64, r),
		NewTanh("t1"),
		NewDense("fc2", 64, 48, r),
		NewReLU("r1"),
		NewDense("head", 48, 10, r),
	)
}

// TestEnableF16WeightsWalker pins the walker's coverage: Dense layers
// at top level, inside nested Sequentials, and inside Residual bodies
// and skips all get packed.
func TestEnableF16WeightsWalker(t *testing.T) {
	r := rng.New(40)
	net := NewSequential("outer",
		NewDense("d1", 8, 8, r),
		NewSequential("inner", NewDense("d2", 8, 8, r), NewReLU("r")),
		NewResidual("res",
			NewSequential("body", NewDense("d3", 8, 8, r)),
			NewDense("d4", 8, 8, r)),
	)
	if got := EnableF16Weights(net); got != 4 {
		t.Fatalf("EnableF16Weights = %d, want 4", got)
	}
}

// TestDenseF16ForwardAccuracy holds the f16 eval path to the f32 path
// within half-precision rounding of the weights: each output element
// reads k weights, each off by at most 2^-11 relative, so the logit
// error is bounded by the activation l1 norm times that.
func TestDenseF16ForwardAccuracy(t *testing.T) {
	r := rng.New(41)
	net := buildMLP(r)
	x := randQInput(r, 5, 32)
	want := append([]float32(nil), net.Forward(x, false).Data()...)

	n := EnableF16Weights(net)
	if n != 3 {
		t.Fatalf("EnableF16Weights = %d, want 3", n)
	}
	got := net.Forward(x, false).Data()
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 2e-2*math.Max(1, math.Abs(float64(want[i]))) {
			t.Fatalf("logit %d: f16 %v vs f32 %v", i, got[i], want[i])
		}
	}
}

// TestDenseF16TrainForwardUnaffected pins that train-mode forwards keep
// using the f32 weights bit-for-bit after EnableF16.
func TestDenseF16TrainForwardUnaffected(t *testing.T) {
	r := rng.New(42)
	d := NewDense("fc", 16, 8, r)
	x := randQInput(r, 3, 16)
	want := append([]float32(nil), d.Forward(x, true).Data()...)
	d.EnableF16()
	got := d.Forward(x, true).Data()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("train forward changed after EnableF16 at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestQuantizedInferenceAccuracy holds the int8 model's logits to the
// f32 model within the documented tolerance on unit-scale inputs, and
// checks argmax agreement across a batch (the decision the serving
// tier actually returns).
func TestQuantizedInferenceAccuracy(t *testing.T) {
	r := rng.New(43)
	net := buildMLP(r)
	x := randQInput(r, 16, 32)
	want := net.Forward(x, false)

	q := NewQuantizedInference(net)
	got := q.Forward(x, false)
	if !tensor.SameShape(got, want) {
		t.Fatalf("shape %v, want %v", got.Shape(), want.Shape())
	}
	wd, gd := want.Data(), got.Data()
	var worst float64
	for i := range wd {
		if d := math.Abs(float64(gd[i] - wd[i])); d > worst {
			worst = d
		}
	}
	// Documented contract: ~1e-2 absolute on unit-scale inputs. Allow
	// 5e-2 headroom for unlucky rounding alignment across three layers.
	if worst > 5e-2 {
		t.Fatalf("worst logit error %v exceeds tolerance", worst)
	}

	rows, cols := want.Dim(0), want.Dim(1)
	agree := 0
	for i := 0; i < rows; i++ {
		if argmaxRow(wd[i*cols:(i+1)*cols]) == argmaxRow(gd[i*cols:(i+1)*cols]) {
			agree++
		}
	}
	if agree < rows-1 { // near-ties may legitimately flip one row
		t.Fatalf("argmax agreement %d/%d", agree, rows)
	}
}

func argmaxRow(d []float32) int {
	best, bi := d[0], 0
	for i, v := range d[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// TestQuantizedInferenceRejectsTraining pins the inference-only
// contract.
func TestQuantizedInferenceRejectsTraining(t *testing.T) {
	r := rng.New(44)
	q := NewQuantizedInference(buildMLP(r))
	defer func() {
		if recover() == nil {
			t.Fatal("train-mode Forward did not panic")
		}
	}()
	q.Forward(randQInput(r, 2, 32), true)
}

// TestQuantizedInferenceDegenerateInputs exercises the quantRange
// corner cases: all-zero input, constant input, and one-sided ranges.
func TestQuantizedInferenceDegenerateInputs(t *testing.T) {
	r := rng.New(45)
	d := NewDense("fc", 8, 4, r)
	net := NewSequential("one", d)
	q := NewQuantizedInference(net)

	cases := map[string]float32{"zero": 0, "constant": 2.5, "negative": -1.25}
	for name, fill := range cases {
		x := tensor.Full(fill, 3, 8)
		want := net.Forward(x, false)
		got := q.Forward(x, false)
		wd, gd := want.Data(), got.Data()
		for i := range wd {
			if math.Abs(float64(gd[i]-wd[i])) > 1e-1*math.Max(1, math.Abs(float64(wd[i]))) {
				t.Fatalf("%s input logit %d: int8 %v vs f32 %v", name, i, gd[i], wd[i])
			}
		}
	}
}
