package nn

import (
	"math"
	"testing"

	"medsplit/internal/rng"
	"medsplit/internal/tensor"
)

func randInput(seed uint64, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	t.FillNormal(rng.New(seed), 0, 1)
	return t
}

func mustGradCheck(t *testing.T, l Layer, x *tensor.Tensor) {
	t.Helper()
	if err := (GradCheck{}).Check(l, x); err != nil {
		t.Fatal(err)
	}
}

func TestDenseForwardKnown(t *testing.T) {
	d := NewDense("fc", 2, 2, rng.New(1))
	// Overwrite weights with known values: W = [[1,2],[3,4]], b = [10, 20].
	copy(d.w.W.Data(), []float32{1, 2, 3, 4})
	copy(d.b.W.Data(), []float32{10, 20})
	x := tensor.FromSlice([]float32{1, 1, 2, 0}, 2, 2)
	y := d.Forward(x, false)
	want := []float32{14, 26, 12, 24}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("Forward = %v, want %v", y.Data(), want)
		}
	}
	if d.In() != 2 || d.Out() != 2 {
		t.Fatalf("In/Out = %d/%d", d.In(), d.Out())
	}
}

func TestDenseGradients(t *testing.T) {
	mustGradCheck(t, NewDense("fc", 5, 3, rng.New(2)), randInput(3, 4, 5))
}

func TestDenseBackwardAccumulates(t *testing.T) {
	d := NewDense("fc", 3, 2, rng.New(4))
	x := randInput(5, 2, 3)
	g := randInput(6, 2, 2)
	ZeroGrads(d.Params())
	d.Forward(x, true)
	d.Backward(g)
	first := d.w.G.Clone()
	d.Forward(x, true)
	d.Backward(g)
	doubled := tensor.Scaled(first, 2)
	if !tensor.AllClose(d.w.G, doubled, 1e-5) {
		t.Fatal("gradients must accumulate across Backward calls")
	}
}

func TestDensePanicsWithoutForward(t *testing.T) {
	d := NewDense("fc", 2, 2, rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("Backward before Forward should panic")
		}
	}()
	d.Backward(tensor.New(1, 2))
}

func TestConv2DKnownIdentityKernel(t *testing.T) {
	// 1x1 kernel with weight 1: convolution is the identity.
	c := NewConv2D("conv", 1, 1, 1, 1, 1, 0, rng.New(1))
	c.w.W.Data()[0] = 1
	c.b.W.Data()[0] = 0
	x := randInput(2, 1, 1, 4, 4)
	y := c.Forward(x, false)
	if !tensor.AllClose(x, y, 1e-6) {
		t.Fatal("1x1 identity kernel must reproduce input")
	}
}

func TestConv2DKnownSum(t *testing.T) {
	// 2x2 kernel of ones, stride 2: each output is the window sum.
	c := NewConv2D("conv", 1, 1, 2, 2, 2, 0, rng.New(1))
	for i := range c.w.W.Data() {
		c.w.W.Data()[i] = 1
	}
	c.b.W.Data()[0] = 0
	x := tensor.FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	y := c.Forward(x, false)
	want := []float32{14, 22, 46, 54}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("conv sums = %v, want %v", y.Data(), want)
		}
	}
}

func TestConv2DGradients(t *testing.T) {
	mustGradCheck(t, NewConv2D("conv", 2, 3, 3, 3, 1, 1, rng.New(7)), randInput(8, 2, 2, 5, 5))
}

func TestConv2DStridedGradients(t *testing.T) {
	mustGradCheck(t, NewConv2D("conv", 1, 2, 3, 3, 2, 1, rng.New(9)), randInput(10, 1, 1, 7, 7))
}

func TestConv2DShapePanic(t *testing.T) {
	c := NewConv2D("conv", 3, 4, 3, 3, 1, 1, rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("wrong channel count should panic")
		}
	}()
	c.Forward(tensor.New(1, 2, 5, 5), false)
}

func TestMaxPoolKnown(t *testing.T) {
	p := NewMaxPool2D("pool", 2, 2)
	x := tensor.FromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 13, 11, 12,
		10, 14, 15, 16,
	}, 1, 1, 4, 4)
	y := p.Forward(x, false)
	want := []float32{4, 8, 14, 16}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("maxpool = %v, want %v", y.Data(), want)
		}
	}
}

func TestMaxPoolGradients(t *testing.T) {
	mustGradCheck(t, NewMaxPool2D("pool", 2, 2), randInput(11, 2, 3, 6, 6))
}

func TestMaxPoolBackwardRouting(t *testing.T) {
	p := NewMaxPool2D("pool", 2, 2)
	x := tensor.FromSlice([]float32{
		1, 2,
		3, 4,
	}, 1, 1, 2, 2)
	p.Forward(x, true)
	g := tensor.FromSlice([]float32{10}, 1, 1, 1, 1)
	dx := p.Backward(g)
	want := []float32{0, 0, 0, 10}
	for i, v := range dx.Data() {
		if v != want[i] {
			t.Fatalf("routed grad = %v, want %v", dx.Data(), want)
		}
	}
}

func TestGlobalAvgPoolKnown(t *testing.T) {
	g := NewGlobalAvgPool("gap")
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 10, 20, 30, 40}, 1, 2, 2, 2)
	y := g.Forward(x, false)
	if y.At(0, 0) != 2.5 || y.At(0, 1) != 25 {
		t.Fatalf("gap = %v", y.Data())
	}
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	mustGradCheck(t, NewGlobalAvgPool("gap"), randInput(13, 2, 4, 3, 3))
}

func TestReLUKnownAndGradients(t *testing.T) {
	r := NewReLU("relu")
	x := tensor.FromSlice([]float32{-1, 0, 2}, 1, 3)
	y := r.Forward(x, false)
	if y.At(0, 0) != 0 || y.At(0, 1) != 0 || y.At(0, 2) != 2 {
		t.Fatalf("relu = %v", y.Data())
	}
	mustGradCheck(t, NewReLU("relu"), randInput(15, 4, 6))
}

func TestLeakyReLUGradients(t *testing.T) {
	l := NewLeakyReLU("lrelu", 0.1)
	x := tensor.FromSlice([]float32{-10, 10}, 1, 2)
	y := l.Forward(x, false)
	if y.At(0, 0) != -1 || y.At(0, 1) != 10 {
		t.Fatalf("leaky relu = %v", y.Data())
	}
	mustGradCheck(t, NewLeakyReLU("lrelu", 0.1), randInput(17, 4, 6))
}

func TestSigmoidGradients(t *testing.T) {
	s := NewSigmoid("sig")
	y := s.Forward(tensor.FromSlice([]float32{0}, 1, 1), false)
	if d := y.At(0, 0) - 0.5; d > 1e-6 || d < -1e-6 {
		t.Fatalf("sigmoid(0) = %v", y.At(0, 0))
	}
	mustGradCheck(t, NewSigmoid("sig"), randInput(19, 3, 5))
}

func TestTanhGradients(t *testing.T) {
	mustGradCheck(t, NewTanh("tanh"), randInput(21, 3, 5))
}

func TestBatchNormTrainNormalizes(t *testing.T) {
	b := NewBatchNorm("bn", 3)
	x := randInput(23, 64, 3)
	y := b.Forward(x, true)
	// Per-feature mean ~0 and variance ~1 (gamma=1, beta=0 initially).
	for ch := 0; ch < 3; ch++ {
		var mean, varSum float64
		for i := 0; i < 64; i++ {
			mean += float64(y.At(i, ch))
		}
		mean /= 64
		for i := 0; i < 64; i++ {
			d := float64(y.At(i, ch)) - mean
			varSum += d * d
		}
		varSum /= 64
		if math.Abs(mean) > 1e-4 {
			t.Errorf("channel %d mean %v", ch, mean)
		}
		if math.Abs(varSum-1) > 1e-2 {
			t.Errorf("channel %d variance %v", ch, varSum)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	b := NewBatchNorm("bn", 2)
	// Train on many batches from a shifted distribution.
	for i := 0; i < 200; i++ {
		x := tensor.New(32, 2)
		x.FillNormal(rng.New(uint64(i)), 5, 2)
		b.Forward(x, true)
	}
	// Eval on data from the same distribution: output should be roughly
	// standardized.
	x := tensor.New(256, 2)
	x.FillNormal(rng.New(999), 5, 2)
	y := b.Forward(x, false)
	if m := y.Mean(); math.Abs(m) > 0.2 {
		t.Fatalf("eval mean %v, want ~0", m)
	}
}

func TestBatchNormGradients2D(t *testing.T) {
	mustGradCheck(t, NewBatchNorm("bn", 4), randInput(25, 8, 4))
}

func TestBatchNormGradients4D(t *testing.T) {
	mustGradCheck(t, NewBatchNorm("bn", 3), randInput(27, 4, 3, 3, 3))
}

func TestBatchNormRejectsWrongChannels(t *testing.T) {
	b := NewBatchNorm("bn", 4)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong channel count should panic")
		}
	}()
	b.Forward(tensor.New(2, 3), false)
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten("flat")
	x := randInput(29, 2, 3, 4, 5)
	y := f.Forward(x, true)
	if y.Dim(0) != 2 || y.Dim(1) != 60 {
		t.Fatalf("flatten shape %v", y.Shape())
	}
	g := randInput(31, 2, 60)
	dx := f.Backward(g)
	if dx.Dim(1) != 3 || dx.Dim(3) != 5 {
		t.Fatalf("backward shape %v", dx.Shape())
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	d := NewDropout("drop", 0.5, rng.New(1))
	x := randInput(33, 4, 4)
	y := d.Forward(x, false)
	if !tensor.AllClose(x, y, 0) {
		t.Fatal("eval-mode dropout must be identity")
	}
}

func TestDropoutTrainStatistics(t *testing.T) {
	d := NewDropout("drop", 0.25, rng.New(2))
	x := tensor.Full(1, 100, 100)
	y := d.Forward(x, true)
	// Inverted dropout preserves the expectation.
	if m := y.Mean(); math.Abs(m-1) > 0.05 {
		t.Fatalf("dropout mean %v, want ~1", m)
	}
	// Survivors are scaled by 1/(1-rate).
	for _, v := range y.Data() {
		if v != 0 && math.Abs(float64(v)-4.0/3.0) > 1e-5 {
			t.Fatalf("survivor value %v, want 4/3", v)
		}
	}
}

func TestDropoutBackwardUsesSameMask(t *testing.T) {
	d := NewDropout("drop", 0.5, rng.New(3))
	x := tensor.Full(1, 10, 10)
	y := d.Forward(x, true)
	g := tensor.Full(1, 10, 10)
	dx := d.Backward(g)
	for i := range y.Data() {
		if (y.Data()[i] == 0) != (dx.Data()[i] == 0) {
			t.Fatal("backward mask differs from forward mask")
		}
	}
}

func TestDropoutRejectsBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rate 1 should panic")
		}
	}()
	NewDropout("drop", 1, rng.New(1))
}

func TestResidualIdentityGradients(t *testing.T) {
	r := rng.New(35)
	body := NewSequential("body",
		NewDense("fc1", 6, 6, r),
		NewReLU("relu"),
		NewDense("fc2", 6, 6, r),
	)
	mustGradCheck(t, NewResidual("res", body, nil), randInput(37, 3, 6))
}

func TestResidualProjectionGradients(t *testing.T) {
	r := rng.New(39)
	body := NewSequential("body", NewDense("fc", 4, 8, r))
	skip := NewSequential("skip", NewDense("proj", 4, 8, r))
	mustGradCheck(t, NewResidual("res", body, skip), randInput(41, 3, 4))
}

func TestResidualShapeMismatchPanics(t *testing.T) {
	r := rng.New(43)
	body := NewSequential("body", NewDense("fc", 4, 8, r))
	res := NewResidual("res", body, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch should panic")
		}
	}()
	res.Forward(tensor.New(2, 4), false)
}

func TestSequentialChainsAndCollectsParams(t *testing.T) {
	r := rng.New(45)
	// Tanh rather than ReLU: the finite-difference check needs a smooth
	// network (ReLU kinks under ±eps weight perturbations break it).
	seq := NewSequential("mlp",
		NewDense("fc1", 4, 8, r),
		NewTanh("tanh"),
		NewDense("fc2", 8, 2, r),
	)
	if len(seq.Params()) != 4 {
		t.Fatalf("params = %d, want 4 (2 dense layers × w,b)", len(seq.Params()))
	}
	if len(seq.Layers()) != 3 {
		t.Fatalf("layers = %d", len(seq.Layers()))
	}
	y := seq.Forward(randInput(47, 5, 4), false)
	if y.Dim(0) != 5 || y.Dim(1) != 2 {
		t.Fatalf("output shape %v", y.Shape())
	}
	mustGradCheck(t, seq, randInput(49, 3, 4))
}

func TestAvgPoolKnown(t *testing.T) {
	p := NewAvgPool2D("avg", 2, 2)
	x := tensor.FromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		10, 20, 30, 40,
		10, 20, 30, 40,
	}, 1, 1, 4, 4)
	y := p.Forward(x, false)
	want := []float32{2.5, 6.5, 15, 35}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("avgpool = %v, want %v", y.Data(), want)
		}
	}
}

func TestAvgPoolGradients(t *testing.T) {
	mustGradCheck(t, NewAvgPool2D("avg", 2, 2), randInput(53, 2, 3, 6, 6))
}

func TestAvgPoolOverlappingGradients(t *testing.T) {
	// stride < k: windows overlap, backward must accumulate.
	mustGradCheck(t, NewAvgPool2D("avg", 3, 2), randInput(55, 1, 2, 7, 7))
}
