package nn

import (
	"fmt"
	"math"

	"medsplit/internal/tensor"
)

// BatchNorm normalizes activations per channel over the batch (and, for
// NCHW input, spatial) dimensions, then applies a learned scale and
// shift. Rank-2 input [n, features] is normalized per feature; rank-4
// input [n, c, h, w] per channel. Training mode uses batch statistics
// and updates running estimates; eval mode uses the running estimates.
type BatchNorm struct {
	name     string
	c        int
	eps      float32
	momentum float32 // fraction of the old running estimate kept per step

	gamma *Param // [c]
	beta  *Param // [c]

	// Running estimates are non-trainable state: they accompany the
	// weights whenever a model is replicated (see Stateful).
	runningMean *tensor.Tensor // [c]
	runningVar  *tensor.Tensor // [c]

	// Backward cache. xhat is layer-owned scratch reused across calls
	// (same lifetime contract as Conv2D's column matrix: Backward runs
	// before the next Forward overwrites it). out/dx are the forward
	// output and backward input-gradient scratch under the same contract.
	xhat    *tensor.Tensor
	out     *tensor.Tensor
	dx      *tensor.Tensor
	invStd  []float32
	inShape []int

	// Reused per-channel scratch: batch statistics and backward sums.
	meanBuf, varBuf     []float32
	sumDyBuf, sumDyXBuf []float32
}

// ensureF32 returns buf resliced to n, reallocating only on growth.
func ensureF32(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

var _ Layer = (*BatchNorm)(nil)

// NewBatchNorm builds a batch-normalization layer for c channels.
func NewBatchNorm(name string, c int) *BatchNorm {
	gamma := tensor.Full(1, c)
	return &BatchNorm{
		name: name, c: c, eps: 1e-5, momentum: 0.9,
		gamma:       NewParam(name+".gamma", gamma),
		beta:        NewParam(name+".beta", tensor.New(c)),
		runningMean: tensor.New(c),
		runningVar:  tensor.Full(1, c),
	}
}

// Name returns the layer name.
func (b *BatchNorm) Name() string { return b.name }

// geometry returns, for input x, the number of channels and the per-
// channel normalization-set size, validating the shape against b.c.
func (b *BatchNorm) geometry(x *tensor.Tensor) (spatial int) {
	switch x.Rank() {
	case 2:
		if x.Dim(1) != b.c {
			panic(fmt.Sprintf("nn: %s: BatchNorm input %v, want [n,%d]", b.name, x.Shape(), b.c))
		}
		return 1
	case 4:
		if x.Dim(1) != b.c {
			panic(fmt.Sprintf("nn: %s: BatchNorm input %v, want [n,%d,h,w]", b.name, x.Shape(), b.c))
		}
		return x.Dim(2) * x.Dim(3)
	default:
		panic(fmt.Sprintf("nn: %s: BatchNorm input rank %d unsupported", b.name, x.Rank()))
	}
}

// forEachChannel calls fn(ch, slice) for every contiguous per-channel
// span of x's storage. For rank-2 input the spans are column strided, so
// fn receives an index list instead; to keep the kernel simple we pass
// explicit offsets.
func (b *BatchNorm) stats(x *tensor.Tensor, spatial int) (mean, variance []float32) {
	n := x.Dim(0)
	m := float32(n * spatial)
	b.meanBuf = ensureF32(b.meanBuf, b.c)
	b.varBuf = ensureF32(b.varBuf, b.c)
	mean, variance = b.meanBuf, b.varBuf
	xd := x.Data()
	if x.Rank() == 2 {
		for i := 0; i < n; i++ {
			row := xd[i*b.c : (i+1)*b.c]
			for ch, v := range row {
				mean[ch] += v
			}
		}
		for ch := range mean {
			mean[ch] /= m
		}
		for i := 0; i < n; i++ {
			row := xd[i*b.c : (i+1)*b.c]
			for ch, v := range row {
				d := v - mean[ch]
				variance[ch] += d * d
			}
		}
	} else {
		for i := 0; i < n; i++ {
			for ch := 0; ch < b.c; ch++ {
				base := (i*b.c + ch) * spatial
				var s float32
				for j := 0; j < spatial; j++ {
					s += xd[base+j]
				}
				mean[ch] += s
			}
		}
		for ch := range mean {
			mean[ch] /= m
		}
		for i := 0; i < n; i++ {
			for ch := 0; ch < b.c; ch++ {
				base := (i*b.c + ch) * spatial
				mu := mean[ch]
				var s float32
				for j := 0; j < spatial; j++ {
					d := xd[base+j] - mu
					s += d * d
				}
				variance[ch] += s
			}
		}
	}
	for ch := range variance {
		variance[ch] /= m
	}
	return mean, variance
}

// Forward normalizes x.
func (b *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	spatial := b.geometry(x)
	var mean, variance []float32
	if train {
		mean, variance = b.stats(x, spatial)
		rm, rv := b.runningMean.Data(), b.runningVar.Data()
		for ch := range mean {
			rm[ch] = b.momentum*rm[ch] + (1-b.momentum)*mean[ch]
			rv[ch] = b.momentum*rv[ch] + (1-b.momentum)*variance[ch]
		}
	} else {
		mean, variance = b.runningMean.Data(), b.runningVar.Data()
	}
	if cap(b.invStd) < b.c {
		b.invStd = make([]float32, b.c)
	}
	invStd := b.invStd[:b.c]
	for ch := range invStd {
		invStd[ch] = float32(1 / math.Sqrt(float64(variance[ch]+b.eps)))
	}

	b.out = b.out.EnsureShapeOf(x)
	out := b.out // apply writes every element
	b.xhat = b.xhat.EnsureShapeOf(x)
	b.apply(x, b.xhat, out, mean, invStd, spatial)
	if train {
		b.invStd = invStd
		b.inShape = x.Shape()
	} else {
		// Eval reuses the xhat/invStd scratch, clobbering any pending
		// backward cache; invalidate it so a Backward after an
		// interleaved eval Forward panics instead of silently using the
		// eval batch's statistics.
		b.inShape = nil
	}
	return out
}

func (b *BatchNorm) apply(x, xhat, out *tensor.Tensor, mean, invStd []float32, spatial int) {
	n := x.Dim(0)
	xd, hd, od := x.Data(), xhat.Data(), out.Data()
	g, bb := b.gamma.W.Data(), b.beta.W.Data()
	if x.Rank() == 2 {
		for i := 0; i < n; i++ {
			off := i * b.c
			for ch := 0; ch < b.c; ch++ {
				h := (xd[off+ch] - mean[ch]) * invStd[ch]
				hd[off+ch] = h
				od[off+ch] = g[ch]*h + bb[ch]
			}
		}
		return
	}
	for i := 0; i < n; i++ {
		for ch := 0; ch < b.c; ch++ {
			base := (i*b.c + ch) * spatial
			mu, is, gc, bc := mean[ch], invStd[ch], g[ch], bb[ch]
			for j := 0; j < spatial; j++ {
				h := (xd[base+j] - mu) * is
				hd[base+j] = h
				od[base+j] = gc*h + bc
			}
		}
	}
}

// Backward implements the standard batch-norm gradient:
//
//	dx = (γ·istd/m) · (m·dy − Σdy − x̂·Σ(dy·x̂))
//
// with per-channel sums, plus dγ = Σ(dy·x̂) and dβ = Σdy.
func (b *BatchNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if b.xhat == nil || b.inShape == nil {
		panic(fmt.Sprintf("nn: %s: Backward before train-mode Forward", b.name))
	}
	spatial := 1
	if len(b.inShape) == 4 {
		spatial = b.inShape[2] * b.inShape[3]
	}
	n := b.inShape[0]
	m := float32(n * spatial)

	b.sumDyBuf = ensureF32(b.sumDyBuf, b.c)
	b.sumDyXBuf = ensureF32(b.sumDyXBuf, b.c)
	sumDy, sumDyXhat := b.sumDyBuf, b.sumDyXBuf
	gd, hd := grad.Data(), b.xhat.Data()
	accumulate := func(ch, idx int) {
		sumDy[ch] += gd[idx]
		sumDyXhat[ch] += gd[idx] * hd[idx]
	}
	b.forEach(n, spatial, accumulate)

	// Parameter gradients.
	gg, bg := b.gamma.G.Data(), b.beta.G.Data()
	for ch := 0; ch < b.c; ch++ {
		gg[ch] += sumDyXhat[ch]
		bg[ch] += sumDy[ch]
	}

	b.dx = tensor.EnsureShape(b.dx, b.inShape...)
	dx := b.dx // the forEach pass below writes every element
	dd := dx.Data()
	g := b.gamma.W.Data()
	b.forEach(n, spatial, func(ch, idx int) {
		dd[idx] = g[ch] * b.invStd[ch] / m * (m*gd[idx] - sumDy[ch] - hd[idx]*sumDyXhat[ch])
	})
	return dx
}

// forEach visits every element index of the cached input layout along
// with its channel.
func (b *BatchNorm) forEach(n, spatial int, fn func(ch, idx int)) {
	if len(b.inShape) == 2 {
		for i := 0; i < n; i++ {
			off := i * b.c
			for ch := 0; ch < b.c; ch++ {
				fn(ch, off+ch)
			}
		}
		return
	}
	for i := 0; i < n; i++ {
		for ch := 0; ch < b.c; ch++ {
			base := (i*b.c + ch) * spatial
			for j := 0; j < spatial; j++ {
				fn(ch, base+j)
			}
		}
	}
}

// Params returns gamma and beta.
func (b *BatchNorm) Params() []*Param { return []*Param{b.gamma, b.beta} }

// State returns the running mean and variance — the non-trainable
// tensors that must travel with the weights when the model is
// replicated or aggregated.
func (b *BatchNorm) State() []*tensor.Tensor {
	return []*tensor.Tensor{b.runningMean, b.runningVar}
}
