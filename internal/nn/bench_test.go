package nn

import (
	"fmt"
	"testing"

	"medsplit/internal/rng"
	"medsplit/internal/tensor"
)

// convForwardReference is the pre-engine forward pipeline — naive
// im2col, naive GEMM, explicit bias broadcast, and the rows→NCHW repack
// — retained so BenchmarkConvForward reports the fused path's speedup
// against a fixed baseline.
func convForwardReference(x, w, bias *tensor.Tensor, outC, kh, kw, stride, pad int) *tensor.Tensor {
	n, h, wd := x.Dim(0), x.Dim(2), x.Dim(3)
	oh := tensor.ConvOutSize(h, kh, stride, pad)
	ow := tensor.ConvOutSize(wd, kw, stride, pad)
	cols := tensor.Im2ColNaive(x, kh, kw, stride, pad)
	rows := tensor.MatMulTBNaive(cols, w)
	rows.AddRowVector(bias)
	return tensor.RowsToNCHW(rows, n, outC, oh, ow)
}

// BenchmarkConvForward measures Conv2D.Forward at the geometries the
// split models run on CIFAR 32×32 with the default cut at L1:
// conv1 (3→16 at 32×32, the platform-side layer) and conv2 (16→32 at
// 16×16, the first server-side conv). The fused cases exercise the
// production layer (buffer reuse included); the reference cases pin the
// retained naive pipeline.
func BenchmarkConvForward(b *testing.B) {
	shapes := []struct {
		name                string
		n, inC, outC, h, w  int
		kh, kw, stride, pad int
	}{
		{"L1-conv1/8x3x32x32-to-16", 8, 3, 16, 32, 32, 3, 3, 1, 1},
		{"L2-conv2/8x16x16x16-to-32", 8, 16, 32, 16, 16, 3, 3, 1, 1},
	}
	for _, s := range shapes {
		r := rng.New(1)
		layer := NewConv2D("bench", s.inC, s.outC, s.kh, s.kw, s.stride, s.pad, r)
		x := tensor.New(s.n, s.inC, s.h, s.w)
		x.FillNormal(r, 0, 1)
		b.Run("fused/"+s.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				layer.Forward(x, false)
			}
		})
		b.Run("reference/"+s.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				convForwardReference(x, layer.w.W, layer.b.W, s.outC, s.kh, s.kw, s.stride, s.pad)
			}
		})
	}
}

// BenchmarkDenseTrainStep measures a forward+backward pair of the
// VGG-lite head dense layer (256→64), where the Acc gradient kernels
// remove the per-step temporaries.
func BenchmarkDenseTrainStep(b *testing.B) {
	for _, batch := range []int{32, 128} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			r := rng.New(1)
			layer := NewDense("bench", 256, 64, r)
			x := tensor.New(batch, 256)
			x.FillNormal(r, 0, 1)
			cot := tensor.New(batch, 64)
			cot.FillNormal(r, 0, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				layer.Forward(x, true)
				layer.Backward(cot)
			}
		})
	}
}
