package nn

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"medsplit/internal/atomicfile"
	"medsplit/internal/tensor"
)

// Checkpointing persists a model's weights and normalization state so
// long geo-distributed training runs survive process restarts —
// cmd/splitserver and cmd/splitplatform expose it via -save/-load.
//
// Layout (little-endian): magic "MSCP", version byte, param count
// uint32, state count uint32, then the tensors in order. Decoding
// validates shapes against the receiving model, so loading a checkpoint
// into the wrong architecture fails loudly.

// ErrBadCheckpoint reports an unreadable or mismatched checkpoint.
var ErrBadCheckpoint = errors.New("nn: bad checkpoint")

var checkpointMagic = [4]byte{'M', 'S', 'C', 'P'}

const checkpointVersion = 1

// SaveCheckpoint writes params and state to w.
func SaveCheckpoint(w io.Writer, params []*Param, state []*tensor.Tensor) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(checkpointMagic[:]); err != nil {
		return fmt.Errorf("nn: writing checkpoint header: %w", err)
	}
	if err := bw.WriteByte(checkpointVersion); err != nil {
		return fmt.Errorf("nn: writing checkpoint version: %w", err)
	}
	var counts [8]byte
	binary.LittleEndian.PutUint32(counts[0:], uint32(len(params)))
	binary.LittleEndian.PutUint32(counts[4:], uint32(len(state)))
	if _, err := bw.Write(counts[:]); err != nil {
		return fmt.Errorf("nn: writing checkpoint counts: %w", err)
	}
	var buf []byte
	for _, p := range params {
		buf = p.W.AppendTo(buf[:0])
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("nn: writing %q: %w", p.Name, err)
		}
	}
	for i, t := range state {
		buf = t.AppendTo(buf[:0])
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("nn: writing state %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// LoadCheckpoint reads a checkpoint from r into params and state,
// validating counts and shapes.
func LoadCheckpoint(r io.Reader, params []*Param, state []*tensor.Tensor) error {
	br := bufio.NewReader(r)
	var hdr [13]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("%w: header: %v", ErrBadCheckpoint, err)
	}
	if [4]byte{hdr[0], hdr[1], hdr[2], hdr[3]} != checkpointMagic {
		return fmt.Errorf("%w: bad magic", ErrBadCheckpoint)
	}
	if hdr[4] != checkpointVersion {
		return fmt.Errorf("%w: version %d, want %d", ErrBadCheckpoint, hdr[4], checkpointVersion)
	}
	np := int(binary.LittleEndian.Uint32(hdr[5:]))
	ns := int(binary.LittleEndian.Uint32(hdr[9:]))
	if np != len(params) || ns != len(state) {
		return fmt.Errorf("%w: holds %d params / %d state, model has %d / %d",
			ErrBadCheckpoint, np, ns, len(params), len(state))
	}
	rest, err := io.ReadAll(br)
	if err != nil {
		return fmt.Errorf("%w: body: %v", ErrBadCheckpoint, err)
	}
	for _, p := range params {
		t, r2, err := tensor.Decode(rest)
		if err != nil {
			return fmt.Errorf("%w: decoding %q: %v", ErrBadCheckpoint, p.Name, err)
		}
		if !tensor.SameShape(p.W, t) {
			return fmt.Errorf("%w: %q has shape %v, want %v", ErrBadCheckpoint, p.Name, t.Shape(), p.W.Shape())
		}
		p.W.CopyFrom(t)
		rest = r2
	}
	for i, dst := range state {
		t, r2, err := tensor.Decode(rest)
		if err != nil {
			return fmt.Errorf("%w: decoding state %d: %v", ErrBadCheckpoint, i, err)
		}
		if !tensor.SameShape(dst, t) {
			return fmt.Errorf("%w: state %d has shape %v, want %v", ErrBadCheckpoint, i, t.Shape(), dst.Shape())
		}
		dst.CopyFrom(t)
		rest = r2
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadCheckpoint, len(rest))
	}
	return nil
}

// SaveCheckpointFile writes a checkpoint through the shared
// fsync-then-rename helper, so a crash mid-save never corrupts the
// previous checkpoint. SaveCheckpoint streams straight into the temp
// file — large models never need a second in-memory copy.
func SaveCheckpointFile(path string, params []*Param, state []*tensor.Tensor) error {
	return atomicfile.WriteWith(path, func(w io.Writer) error {
		return SaveCheckpoint(w, params, state)
	})
}

// LoadCheckpointFile reads a checkpoint from disk into the model.
func LoadCheckpointFile(path string, params []*Param, state []*tensor.Tensor) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("nn: opening checkpoint: %w", err)
	}
	defer f.Close()
	return LoadCheckpoint(f, params, state)
}
