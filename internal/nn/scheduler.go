package nn

import (
	"fmt"
	"math"
)

// Schedule maps a training round to a learning rate. The engines call
// it (when configured) before each optimizer step, so long experiments
// can decay their rate without hand-rolled training loops.
type Schedule func(round int) float32

// ConstantLR returns lr for every round.
func ConstantLR(lr float32) Schedule {
	return func(int) float32 { return lr }
}

// StepDecay multiplies base by factor every `every` rounds:
// lr = base · factor^(round/every). factor is typically 0.1–0.5.
func StepDecay(base, factor float32, every int) Schedule {
	if every <= 0 {
		panic(fmt.Sprintf("nn: StepDecay every=%d", every))
	}
	return func(round int) float32 {
		steps := round / every
		return base * float32(math.Pow(float64(factor), float64(steps)))
	}
}

// CosineDecay anneals from base to min over total rounds following a
// half cosine, then holds min.
func CosineDecay(base, min float32, total int) Schedule {
	if total <= 0 {
		panic(fmt.Sprintf("nn: CosineDecay total=%d", total))
	}
	return func(round int) float32 {
		if round >= total {
			return min
		}
		frac := float64(round) / float64(total)
		return min + (base-min)*float32(0.5*(1+math.Cos(math.Pi*frac)))
	}
}

// LRAdjustable is satisfied by optimizers whose learning rate can be
// changed mid-training.
type LRAdjustable interface {
	SetLR(lr float32)
}

// SetLR adjusts the learning rate of SGD.
func (s *SGD) SetLR(lr float32) { s.LR = lr }

// SetLR adjusts the learning rate of Momentum.
func (m *Momentum) SetLR(lr float32) { m.LR = lr }

// SetLR adjusts the learning rate of Adam.
func (a *Adam) SetLR(lr float32) { a.LR = lr }

var (
	_ LRAdjustable = (*SGD)(nil)
	_ LRAdjustable = (*Momentum)(nil)
	_ LRAdjustable = (*Adam)(nil)
)

// ApplySchedule sets the optimizer's rate for the given round when both
// a schedule is present and the optimizer supports adjustment; it
// reports whether anything happened.
func ApplySchedule(opt Optimizer, sched Schedule, round int) bool {
	if sched == nil {
		return false
	}
	adj, ok := opt.(LRAdjustable)
	if !ok {
		return false
	}
	adj.SetLR(sched(round))
	return true
}
