// Package nn implements the neural-network layers, loss functions and
// optimizers that medsplit's VGG-style and ResNet-style models are built
// from.
//
// Layers follow an explicit forward/backward contract: Forward caches
// whatever it needs, Backward consumes that cache, accumulates parameter
// gradients, and returns the gradient with respect to the layer input.
// A layer instance therefore serves one training goroutine at a time.
//
// The split-learning engine in internal/core cuts a Sequential into a
// platform-side front (the paper's L1) and a server-side back
// (L2 … Lk); both halves are ordinary Sequential values from this
// package.
package nn

import (
	"fmt"

	"medsplit/internal/tensor"
)

// Layer is one differentiable stage of a network.
type Layer interface {
	// Forward computes the layer output for x. When train is true the
	// layer may cache activations for Backward and use training-mode
	// behaviour (dropout masks, batch statistics).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor

	// Backward consumes the gradient of the loss with respect to the
	// layer's output, accumulates parameter gradients, and returns the
	// gradient with respect to the layer's input. It must follow a
	// train-mode Forward.
	Backward(grad *tensor.Tensor) *tensor.Tensor

	// Params returns the layer's trainable parameters, or nil.
	Params() []*Param

	// Name identifies the layer in diagnostics.
	Name() string
}

// Param is one trainable tensor together with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor
	G    *tensor.Tensor
}

// NewParam allocates a parameter and a matching zero gradient.
func NewParam(name string, w *tensor.Tensor) *Param {
	return &Param{Name: name, W: w, G: tensor.New(w.Shape()...)}
}

// ZeroGrads clears the gradient accumulators of all params.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.G.Zero()
	}
}

// ParamCount returns the total number of scalar weights across params.
func ParamCount(params []*Param) int {
	n := 0
	for _, p := range params {
		n += p.W.Size()
	}
	return n
}

// CopyParams copies weight values from src into dst. The two lists must
// be structurally identical (same order, names and shapes) — they come
// from two instances of the same architecture.
func CopyParams(dst, src []*Param) error {
	if len(dst) != len(src) {
		return fmt.Errorf("nn: CopyParams length mismatch %d vs %d", len(dst), len(src))
	}
	for i := range dst {
		if !tensor.SameShape(dst[i].W, src[i].W) {
			return fmt.Errorf("nn: CopyParams shape mismatch at %q", dst[i].Name)
		}
		dst[i].W.CopyFrom(src[i].W)
	}
	return nil
}

// AverageParams overwrites dst's weights with the weighted average of the
// source parameter lists. weights need not be normalized; they are scaled
// to sum to 1. Used by FedAvg and by the split framework's L1
// synchronization policy.
func AverageParams(dst []*Param, srcs [][]*Param, weights []float64) error {
	if len(srcs) == 0 {
		return fmt.Errorf("nn: AverageParams with no sources")
	}
	if len(weights) != len(srcs) {
		return fmt.Errorf("nn: AverageParams %d weights for %d sources", len(weights), len(srcs))
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			return fmt.Errorf("nn: AverageParams negative weight %v", w)
		}
		total += w
	}
	if total == 0 {
		return fmt.Errorf("nn: AverageParams weights sum to zero")
	}
	for i := range dst {
		acc := dst[i].W.Data()
		for j := range acc {
			acc[j] = 0
		}
		for s, src := range srcs {
			if len(src) != len(dst) {
				return fmt.Errorf("nn: AverageParams source %d has %d params, want %d", s, len(src), len(dst))
			}
			if !tensor.SameShape(dst[i].W, src[i].W) {
				return fmt.Errorf("nn: AverageParams shape mismatch at %q (source %d)", dst[i].Name, s)
			}
			scale := float32(weights[s] / total)
			sd := src[i].W.Data()
			for j := range acc {
				acc[j] += scale * sd[j]
			}
		}
	}
	return nil
}

// EncodeParams serializes the weights of params into a byte slice — the
// payload a parameter-exchange scheme (FedAvg, synchronous SGD) puts on
// the wire. EncodeGrads does the same for gradients.
func EncodeParams(params []*Param) []byte {
	var buf []byte
	for _, p := range params {
		buf = p.W.AppendTo(buf)
	}
	return buf
}

// EncodeGrads serializes the gradient accumulators of params.
func EncodeGrads(params []*Param) []byte {
	var buf []byte
	for _, p := range params {
		buf = p.G.AppendTo(buf)
	}
	return buf
}

// DecodeParamsInto decodes a buffer produced by EncodeParams into the
// weights of params, validating shapes.
func DecodeParamsInto(params []*Param, buf []byte) error {
	return decodeInto(params, buf, func(p *Param) *tensor.Tensor { return p.W })
}

// DecodeGradsInto decodes a buffer produced by EncodeGrads into the
// gradient accumulators of params.
func DecodeGradsInto(params []*Param, buf []byte) error {
	return decodeInto(params, buf, func(p *Param) *tensor.Tensor { return p.G })
}

func decodeInto(params []*Param, buf []byte, pick func(*Param) *tensor.Tensor) error {
	for _, p := range params {
		t, rest, err := tensor.Decode(buf)
		if err != nil {
			return fmt.Errorf("nn: decoding %q: %w", p.Name, err)
		}
		dst := pick(p)
		if !tensor.SameShape(dst, t) {
			return fmt.Errorf("nn: decoded shape %v for %q, want %v", t.Shape(), p.Name, dst.Shape())
		}
		dst.CopyFrom(t)
		buf = rest
	}
	if len(buf) != 0 {
		return fmt.Errorf("nn: %d trailing bytes after decoding %d params", len(buf), len(params))
	}
	return nil
}

// Stateful is implemented by layers that carry non-trainable state
// which must travel with the weights whenever a model is replicated or
// aggregated — BatchNorm's running statistics are the canonical case.
// Parameter-exchange schemes (sync SGD, FedAvg) that ignore such state
// evaluate garbage models: the aggregation server's normalization
// statistics never move from their initialization.
type Stateful interface {
	State() []*tensor.Tensor
}

// CollectState gathers the stateful tensors of a layer tree in
// deterministic (depth-first) order. Two instances of the same
// architecture yield structurally identical lists.
func CollectState(l Layer) []*tensor.Tensor {
	switch v := l.(type) {
	case *Sequential:
		var out []*tensor.Tensor
		for _, child := range v.layers {
			out = append(out, CollectState(child)...)
		}
		return out
	case *Residual:
		out := CollectState(v.body)
		if v.skip != nil {
			out = append(out, CollectState(v.skip)...)
		}
		return out
	case Stateful:
		return v.State()
	default:
		return nil
	}
}

// ReplaySafe reports whether a layer tree's training forward pass can
// be re-run on the same input with bit-identical output and no side
// effects. Stateful layers fail (BatchNorm's running statistics would
// advance twice) and so do stochastic ones (a Dropout replay consumes
// fresh randomness and draws a different mask). Schedulers that
// rebuild a layer tree's backward cache by replaying the forward — the
// relaxed-consistency server does this to interleave platform
// exchanges — must refuse trees where this returns false.
func ReplaySafe(l Layer) bool {
	switch v := l.(type) {
	case *Sequential:
		for _, child := range v.layers {
			if !ReplaySafe(child) {
				return false
			}
		}
		return true
	case *Residual:
		if !ReplaySafe(v.body) {
			return false
		}
		return v.skip == nil || ReplaySafe(v.skip)
	case *Dropout:
		return false
	case Stateful:
		return false
	default:
		return true
	}
}

// EncodeState serializes stateful tensors for transmission alongside
// weights.
func EncodeState(state []*tensor.Tensor) []byte {
	var buf []byte
	for _, t := range state {
		buf = t.AppendTo(buf)
	}
	return buf
}

// DecodeStateInto decodes a buffer produced by EncodeState into the
// given state tensors, validating shapes.
func DecodeStateInto(state []*tensor.Tensor, buf []byte) error {
	for i, dst := range state {
		t, rest, err := tensor.Decode(buf)
		if err != nil {
			return fmt.Errorf("nn: decoding state %d: %w", i, err)
		}
		if !tensor.SameShape(dst, t) {
			return fmt.Errorf("nn: state %d shape %v, want %v", i, t.Shape(), dst.Shape())
		}
		dst.CopyFrom(t)
		buf = rest
	}
	if len(buf) != 0 {
		return fmt.Errorf("nn: %d trailing bytes after decoding %d state tensors", len(buf), len(state))
	}
	return nil
}

// AverageStateInto overwrites dst with the weighted average of the
// source state lists — how BatchNorm buffers aggregate across workers.
func AverageStateInto(dst []*tensor.Tensor, srcs [][]*tensor.Tensor, weights []float64) error {
	if len(srcs) == 0 || len(weights) != len(srcs) {
		return fmt.Errorf("nn: AverageStateInto %d sources, %d weights", len(srcs), len(weights))
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			return fmt.Errorf("nn: negative state weight %v", w)
		}
		total += w
	}
	if total == 0 {
		return fmt.Errorf("nn: state weights sum to zero")
	}
	for i, d := range dst {
		acc := d.Data()
		for j := range acc {
			acc[j] = 0
		}
		for s, src := range srcs {
			if len(src) != len(dst) {
				return fmt.Errorf("nn: state source %d has %d tensors, want %d", s, len(src), len(dst))
			}
			if !tensor.SameShape(d, src[i]) {
				return fmt.Errorf("nn: state %d shape mismatch at source %d", i, s)
			}
			scale := float32(weights[s] / total)
			sd := src[i].Data()
			for j := range acc {
				acc[j] += scale * sd[j]
			}
		}
	}
	return nil
}

// EncodeModel serializes weights followed by stateful tensors — the
// full replication payload for parameter-exchange schemes.
func EncodeModel(params []*Param, state []*tensor.Tensor) []byte {
	buf := EncodeParams(params)
	for _, t := range state {
		buf = t.AppendTo(buf)
	}
	return buf
}

// EncodeModelInto is EncodeModel appending into a caller-owned buffer
// (typically drawn from a wire.BufferPool), so steady-state broadcast
// loops encode without allocating.
func EncodeModelInto(buf []byte, params []*Param, state []*tensor.Tensor) []byte {
	for _, p := range params {
		buf = p.W.AppendTo(buf)
	}
	for _, t := range state {
		buf = t.AppendTo(buf)
	}
	return buf
}

// DecodeModelInto decodes a buffer produced by EncodeModel into the
// given weights and state tensors.
func DecodeModelInto(params []*Param, state []*tensor.Tensor, buf []byte) error {
	_, err := DecodeModelScratch(nil, params, state, buf)
	return err
}

// DecodeModelScratch is DecodeModelInto through caller-owned scratch
// tensors: each wire tensor decodes into the corresponding scratch
// entry (allocated on first use, reused afterwards) before its shape is
// validated and its data copied into the model, so steady-state rounds
// of a parameter-exchange loop decode without allocating. It returns
// the (possibly grown) scratch slice; pass nil on the first call.
func DecodeModelScratch(scratch []*tensor.Tensor, params []*Param, state []*tensor.Tensor, buf []byte) ([]*tensor.Tensor, error) {
	if need := len(params) + len(state); len(scratch) != need {
		scratch = make([]*tensor.Tensor, need)
	}
	for i, p := range params {
		t, rest, err := tensor.DecodeInto(scratch[i], buf)
		if err != nil {
			return scratch, fmt.Errorf("nn: decoding %q: %w", p.Name, err)
		}
		scratch[i] = t
		if !tensor.SameShape(p.W, t) {
			return scratch, fmt.Errorf("nn: decoded shape %v for %q, want %v", t.Shape(), p.Name, p.W.Shape())
		}
		p.W.CopyFrom(t)
		buf = rest
	}
	for i, dst := range state {
		t, rest, err := tensor.DecodeInto(scratch[len(params)+i], buf)
		if err != nil {
			return scratch, fmt.Errorf("nn: decoding state %d: %w", i, err)
		}
		scratch[len(params)+i] = t
		if !tensor.SameShape(dst, t) {
			return scratch, fmt.Errorf("nn: state %d shape %v, want %v", i, t.Shape(), dst.Shape())
		}
		dst.CopyFrom(t)
		buf = rest
	}
	if len(buf) != 0 {
		return scratch, fmt.Errorf("nn: %d trailing bytes after decoding model", len(buf))
	}
	return scratch, nil
}

// Sequential chains layers front to back.
type Sequential struct {
	name   string
	layers []Layer

	// params caches the concatenated parameter list: the layer set is
	// fixed at construction, and the training loop asks for Params
	// several times per round (zero, clip, step, mirror), which made the
	// repeated concatenation a per-round allocation hot spot.
	params []*Param
}

var _ Layer = (*Sequential)(nil)

// NewSequential builds a named chain of layers.
func NewSequential(name string, layers ...Layer) *Sequential {
	return &Sequential{name: name, layers: layers}
}

// Name returns the chain's name.
func (s *Sequential) Name() string { return s.name }

// Layers returns the underlying layer list (not a copy; used by model
// splitting).
func (s *Sequential) Layers() []Layer { return s.layers }

// Forward runs x through every layer in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates grad through every layer in reverse order.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.layers) - 1; i >= 0; i-- {
		grad = s.layers[i].Backward(grad)
	}
	return grad
}

// Params returns the concatenated parameters of all layers, in layer
// order. The list is computed once and cached — callers must treat it
// as read-only and must not mutate the chain's layer set afterwards
// (nothing in this repo does; models are assembled before training).
func (s *Sequential) Params() []*Param {
	if s.params == nil {
		out := []*Param{}
		for _, l := range s.layers {
			out = append(out, l.Params()...)
		}
		s.params = out
	}
	return s.params
}
