package nn

import (
	"fmt"
	"math"

	"medsplit/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients. Step
// does not clear gradients; callers ZeroGrads before the next backward
// pass so that gradient accumulation across micro-batches stays possible.
type Optimizer interface {
	Step(params []*Param)
	Name() string
}

// SGD is plain stochastic gradient descent with optional L2 weight decay.
type SGD struct {
	LR          float32
	WeightDecay float32
}

var _ Optimizer = (*SGD)(nil)

// Name returns "sgd".
func (s *SGD) Name() string { return "sgd" }

// Step applies w ← w − lr·(g + wd·w).
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		w, g := p.W.Data(), p.G.Data()
		for i := range w {
			grad := g[i]
			if s.WeightDecay != 0 {
				grad += s.WeightDecay * w[i]
			}
			w[i] -= s.LR * grad
		}
	}
}

// Momentum is SGD with classical momentum (Polyak heavy ball).
type Momentum struct {
	LR          float32
	Mu          float32 // momentum coefficient, typically 0.9
	WeightDecay float32

	velocity map[*Param]*tensor.Tensor
}

var _ Optimizer = (*Momentum)(nil)

// Name returns "momentum".
func (m *Momentum) Name() string { return "momentum" }

// Step applies v ← mu·v − lr·g; w ← w + v.
func (m *Momentum) Step(params []*Param) {
	if m.velocity == nil {
		m.velocity = make(map[*Param]*tensor.Tensor, len(params))
	}
	for _, p := range params {
		v, ok := m.velocity[p]
		if !ok {
			v = tensor.New(p.W.Shape()...)
			m.velocity[p] = v
		}
		w, g, vd := p.W.Data(), p.G.Data(), v.Data()
		for i := range w {
			grad := g[i]
			if m.WeightDecay != 0 {
				grad += m.WeightDecay * w[i]
			}
			vd[i] = m.Mu*vd[i] - m.LR*grad
			w[i] += vd[i]
		}
	}
}

// Adam is the Kingma & Ba adaptive-moment optimizer.
type Adam struct {
	LR    float32
	Beta1 float32 // default 0.9 when zero
	Beta2 float32 // default 0.999 when zero
	Eps   float32 // default 1e-8 when zero

	t int
	m map[*Param]*tensor.Tensor
	v map[*Param]*tensor.Tensor
}

var _ Optimizer = (*Adam)(nil)

// Name returns "adam".
func (a *Adam) Name() string { return "adam" }

// Step applies the Adam update with bias correction.
func (a *Adam) Step(params []*Param) {
	if a.Beta1 == 0 {
		a.Beta1 = 0.9
	}
	if a.Beta2 == 0 {
		a.Beta2 = 0.999
	}
	if a.Eps == 0 {
		a.Eps = 1e-8
	}
	if a.m == nil {
		a.m = make(map[*Param]*tensor.Tensor, len(params))
		a.v = make(map[*Param]*tensor.Tensor, len(params))
	}
	a.t++
	c1 := 1 - float32(math.Pow(float64(a.Beta1), float64(a.t)))
	c2 := 1 - float32(math.Pow(float64(a.Beta2), float64(a.t)))
	for _, p := range params {
		mt, ok := a.m[p]
		if !ok {
			mt = tensor.New(p.W.Shape()...)
			a.m[p] = mt
			a.v[p] = tensor.New(p.W.Shape()...)
		}
		vt := a.v[p]
		w, g, md, vd := p.W.Data(), p.G.Data(), mt.Data(), vt.Data()
		for i := range w {
			md[i] = a.Beta1*md[i] + (1-a.Beta1)*g[i]
			vd[i] = a.Beta2*vd[i] + (1-a.Beta2)*g[i]*g[i]
			mHat := md[i] / c1
			vHat := vd[i] / c2
			w[i] -= a.LR * mHat / (float32(math.Sqrt(float64(vHat))) + a.Eps)
		}
	}
}

// OptimizerState is an optimizer's internal state, captured for
// checkpointing: scalar counters (e.g. Adam's step count) as raw
// uint64 values and per-parameter state tensors in a deterministic
// order. The tensors are deep copies — mutating the live optimizer
// after capture does not corrupt the snapshot.
type OptimizerState struct {
	Scalars []uint64
	Tensors []*tensor.Tensor
}

// StatefulOptimizer is implemented by optimizers whose updates depend
// on accumulated internal state (momentum buffers, moment estimates).
// CaptureState/RestoreState order state tensors by the params list, so
// two structurally identical models exchange state losslessly. Plain
// SGD is stateless and does not implement the interface.
type StatefulOptimizer interface {
	Optimizer
	CaptureState(params []*Param) OptimizerState
	RestoreState(params []*Param, st OptimizerState) error
}

// cloneTensor deep-copies t (zeros when t is nil, shaped like ref).
func cloneTensor(t *tensor.Tensor, ref *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(ref.Shape()...)
	if t != nil {
		out.CopyFrom(t)
	}
	return out
}

var _ StatefulOptimizer = (*Momentum)(nil)

// CaptureState snapshots the velocity buffers, one per param in params
// order (zeros for params never stepped).
func (m *Momentum) CaptureState(params []*Param) OptimizerState {
	st := OptimizerState{Tensors: make([]*tensor.Tensor, len(params))}
	for i, p := range params {
		st.Tensors[i] = cloneTensor(m.velocity[p], p.W)
	}
	return st
}

// RestoreState overwrites the velocity buffers from a snapshot.
func (m *Momentum) RestoreState(params []*Param, st OptimizerState) error {
	if len(st.Scalars) != 0 || len(st.Tensors) != len(params) {
		return fmt.Errorf("nn: momentum state has %d scalars / %d tensors, want 0 / %d",
			len(st.Scalars), len(st.Tensors), len(params))
	}
	if m.velocity == nil {
		m.velocity = make(map[*Param]*tensor.Tensor, len(params))
	}
	for i, p := range params {
		if !tensor.SameShape(st.Tensors[i], p.W) {
			return fmt.Errorf("nn: momentum state tensor %d shape %v, want %v", i, st.Tensors[i].Shape(), p.W.Shape())
		}
		m.velocity[p] = cloneTensor(st.Tensors[i], p.W)
	}
	return nil
}

var _ StatefulOptimizer = (*Adam)(nil)

// CaptureState snapshots the step count and first/second moment
// estimates ([m, v] per param, in params order).
func (a *Adam) CaptureState(params []*Param) OptimizerState {
	st := OptimizerState{
		Scalars: []uint64{uint64(a.t)},
		Tensors: make([]*tensor.Tensor, 0, 2*len(params)),
	}
	for _, p := range params {
		st.Tensors = append(st.Tensors, cloneTensor(a.m[p], p.W), cloneTensor(a.v[p], p.W))
	}
	return st
}

// RestoreState overwrites the step count and moment estimates.
func (a *Adam) RestoreState(params []*Param, st OptimizerState) error {
	if len(st.Scalars) != 1 || len(st.Tensors) != 2*len(params) {
		return fmt.Errorf("nn: adam state has %d scalars / %d tensors, want 1 / %d",
			len(st.Scalars), len(st.Tensors), 2*len(params))
	}
	if a.m == nil {
		a.m = make(map[*Param]*tensor.Tensor, len(params))
		a.v = make(map[*Param]*tensor.Tensor, len(params))
	}
	a.t = int(st.Scalars[0])
	for i, p := range params {
		mt, vt := st.Tensors[2*i], st.Tensors[2*i+1]
		if !tensor.SameShape(mt, p.W) || !tensor.SameShape(vt, p.W) {
			return fmt.Errorf("nn: adam state tensors for param %d mismatch shape %v", i, p.W.Shape())
		}
		a.m[p] = cloneTensor(mt, p.W)
		a.v[p] = cloneTensor(vt, p.W)
	}
	return nil
}

// CaptureOptimizerState captures opt's state, or an empty state for
// stateless optimizers (SGD).
func CaptureOptimizerState(opt Optimizer, params []*Param) OptimizerState {
	if so, ok := opt.(StatefulOptimizer); ok {
		return so.CaptureState(params)
	}
	return OptimizerState{}
}

// RestoreOptimizerState restores a state captured by
// CaptureOptimizerState into opt. A non-empty state for a stateless
// optimizer is a config mismatch and fails.
func RestoreOptimizerState(opt Optimizer, params []*Param, st OptimizerState) error {
	if so, ok := opt.(StatefulOptimizer); ok {
		return so.RestoreState(params, st)
	}
	if len(st.Scalars) != 0 || len(st.Tensors) != 0 {
		return fmt.Errorf("nn: optimizer %q is stateless but checkpoint carries %d scalars / %d tensors",
			opt.Name(), len(st.Scalars), len(st.Tensors))
	}
	return nil
}

// ClipGrads clamps every gradient entry into [-limit, limit]. The
// training loops call it before the optimizer step to keep early rounds
// stable at the small batch sizes the simulations use.
func ClipGrads(params []*Param, limit float32) {
	if limit <= 0 {
		panic(fmt.Sprintf("nn: ClipGrads limit %v must be positive", limit))
	}
	for _, p := range params {
		p.G.ClipInPlace(limit)
	}
}
