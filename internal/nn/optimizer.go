package nn

import (
	"fmt"
	"math"

	"medsplit/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients. Step
// does not clear gradients; callers ZeroGrads before the next backward
// pass so that gradient accumulation across micro-batches stays possible.
type Optimizer interface {
	Step(params []*Param)
	Name() string
}

// SGD is plain stochastic gradient descent with optional L2 weight decay.
type SGD struct {
	LR          float32
	WeightDecay float32
}

var _ Optimizer = (*SGD)(nil)

// Name returns "sgd".
func (s *SGD) Name() string { return "sgd" }

// Step applies w ← w − lr·(g + wd·w).
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		w, g := p.W.Data(), p.G.Data()
		for i := range w {
			grad := g[i]
			if s.WeightDecay != 0 {
				grad += s.WeightDecay * w[i]
			}
			w[i] -= s.LR * grad
		}
	}
}

// Momentum is SGD with classical momentum (Polyak heavy ball).
type Momentum struct {
	LR          float32
	Mu          float32 // momentum coefficient, typically 0.9
	WeightDecay float32

	velocity map[*Param]*tensor.Tensor
}

var _ Optimizer = (*Momentum)(nil)

// Name returns "momentum".
func (m *Momentum) Name() string { return "momentum" }

// Step applies v ← mu·v − lr·g; w ← w + v.
func (m *Momentum) Step(params []*Param) {
	if m.velocity == nil {
		m.velocity = make(map[*Param]*tensor.Tensor, len(params))
	}
	for _, p := range params {
		v, ok := m.velocity[p]
		if !ok {
			v = tensor.New(p.W.Shape()...)
			m.velocity[p] = v
		}
		w, g, vd := p.W.Data(), p.G.Data(), v.Data()
		for i := range w {
			grad := g[i]
			if m.WeightDecay != 0 {
				grad += m.WeightDecay * w[i]
			}
			vd[i] = m.Mu*vd[i] - m.LR*grad
			w[i] += vd[i]
		}
	}
}

// Adam is the Kingma & Ba adaptive-moment optimizer.
type Adam struct {
	LR    float32
	Beta1 float32 // default 0.9 when zero
	Beta2 float32 // default 0.999 when zero
	Eps   float32 // default 1e-8 when zero

	t int
	m map[*Param]*tensor.Tensor
	v map[*Param]*tensor.Tensor
}

var _ Optimizer = (*Adam)(nil)

// Name returns "adam".
func (a *Adam) Name() string { return "adam" }

// Step applies the Adam update with bias correction.
func (a *Adam) Step(params []*Param) {
	if a.Beta1 == 0 {
		a.Beta1 = 0.9
	}
	if a.Beta2 == 0 {
		a.Beta2 = 0.999
	}
	if a.Eps == 0 {
		a.Eps = 1e-8
	}
	if a.m == nil {
		a.m = make(map[*Param]*tensor.Tensor, len(params))
		a.v = make(map[*Param]*tensor.Tensor, len(params))
	}
	a.t++
	c1 := 1 - float32(math.Pow(float64(a.Beta1), float64(a.t)))
	c2 := 1 - float32(math.Pow(float64(a.Beta2), float64(a.t)))
	for _, p := range params {
		mt, ok := a.m[p]
		if !ok {
			mt = tensor.New(p.W.Shape()...)
			a.m[p] = mt
			a.v[p] = tensor.New(p.W.Shape()...)
		}
		vt := a.v[p]
		w, g, md, vd := p.W.Data(), p.G.Data(), mt.Data(), vt.Data()
		for i := range w {
			md[i] = a.Beta1*md[i] + (1-a.Beta1)*g[i]
			vd[i] = a.Beta2*vd[i] + (1-a.Beta2)*g[i]*g[i]
			mHat := md[i] / c1
			vHat := vd[i] / c2
			w[i] -= a.LR * mHat / (float32(math.Sqrt(float64(vHat))) + a.Eps)
		}
	}
}

// ClipGrads clamps every gradient entry into [-limit, limit]. The
// training loops call it before the optimizer step to keep early rounds
// stable at the small batch sizes the simulations use.
func ClipGrads(params []*Param, limit float32) {
	if limit <= 0 {
		panic(fmt.Sprintf("nn: ClipGrads limit %v must be positive", limit))
	}
	for _, p := range params {
		p.G.ClipInPlace(limit)
	}
}
