package nn

import (
	"fmt"
	"math"

	"medsplit/internal/tensor"
)

// Loss turns network output and integer class labels into a scalar loss
// and the gradient of that loss with respect to the network output.
//
// In the split-learning protocol this computation happens on the
// *platform* (which holds the labels), not on the server — that is what
// keeps labels private (paper Fig. 3, steps 3–4).
type Loss interface {
	// Loss returns the mean loss over the batch and dL/dlogits.
	Loss(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor)
	Name() string
}

// SoftmaxCrossEntropy is the standard classification loss: softmax over
// logits followed by negative log-likelihood, averaged over the batch.
type SoftmaxCrossEntropy struct{}

var _ Loss = SoftmaxCrossEntropy{}

// Name returns "softmax-xent".
func (SoftmaxCrossEntropy) Name() string { return "softmax-xent" }

// Loss computes mean cross entropy and its gradient (softmax − onehot)/n.
func (SoftmaxCrossEntropy) Loss(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	grad := tensor.New(logits.Dim(0), logits.Dim(1))
	total := softmaxXentInto(grad, logits, labels)
	return total, grad
}

// ReusingSoftmaxCrossEntropy is SoftmaxCrossEntropy with a loss-owned
// gradient tensor reused across calls: the returned gradient is valid
// until the next Loss call on the same instance. The training loops
// consume the gradient immediately (encode it onto the wire or run the
// backward pass), so each party holds its own instance and the per-round
// gradient allocation disappears. A Loss instance serves one goroutine.
type ReusingSoftmaxCrossEntropy struct {
	grad *tensor.Tensor
}

var _ Loss = (*ReusingSoftmaxCrossEntropy)(nil)

// Name returns "softmax-xent" — the reuse policy is local, not part of
// the protocol-visible identity.
func (*ReusingSoftmaxCrossEntropy) Name() string { return "softmax-xent" }

// Loss computes mean cross entropy and its gradient into reused scratch.
func (l *ReusingSoftmaxCrossEntropy) Loss(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	l.grad = tensor.EnsureShape(l.grad, logits.Dim(0), logits.Dim(1))
	total := softmaxXentInto(l.grad, logits, labels)
	return total, l.grad
}

// softmaxXentInto writes (softmax − onehot)/n into grad in one fused
// row-wise pass — the softmax lands directly in the gradient tensor, so
// no separate probability tensor is materialized — and returns the mean
// cross entropy. The softmax numerics (max shift, float64 sum, inverse
// multiply) match tensor.SoftmaxRows exactly.
func softmaxXentInto(grad, logits *tensor.Tensor, labels []int) float64 {
	if logits.Rank() != 2 {
		panic(fmt.Sprintf("nn: cross-entropy logits %v, want rank 2", logits.Shape()))
	}
	n, classes := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for batch of %d", len(labels), n))
	}
	var total float64
	invN := float32(1) / float32(n)
	for i, lab := range labels {
		if lab < 0 || lab >= classes {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", lab, classes))
		}
		in := logits.Row(i)
		out := grad.Row(i)
		m := in[0]
		for _, v := range in[1:] {
			if v > m {
				m = v
			}
		}
		var sum float64
		for c, v := range in {
			e := math.Exp(float64(v - m))
			out[c] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for c := range out {
			out[c] *= inv
		}
		p := float64(out[lab])
		if p < 1e-12 {
			p = 1e-12
		}
		total -= math.Log(p)
		out[lab] -= 1
		for c := range out {
			out[c] *= invN
		}
	}
	return total / float64(n)
}

// MSE is the mean-squared-error loss against one-hot targets. It exists
// as a simpler comparison loss for tests and the quickstart example.
type MSE struct{}

var _ Loss = MSE{}

// Name returns "mse".
func (MSE) Name() string { return "mse" }

// Loss computes mean squared error against one-hot labels and its
// gradient 2(y − onehot)/(n·c).
func (MSE) Loss(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	if logits.Rank() != 2 {
		panic(fmt.Sprintf("nn: MSE logits %v, want rank 2", logits.Shape()))
	}
	n, classes := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for batch of %d", len(labels), n))
	}
	grad := tensor.New(n, classes)
	var total float64
	scale := 2 / float32(n*classes)
	for i := 0; i < n; i++ {
		for c := 0; c < classes; c++ {
			target := float32(0)
			if c == labels[i] {
				target = 1
			}
			d := logits.At(i, c) - target
			total += float64(d) * float64(d)
			grad.Set(d*scale, i, c)
		}
	}
	return total / float64(n*classes), grad
}

// Accuracy returns the fraction of rows whose argmax matches the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	pred := tensor.ArgmaxRows(logits)
	if len(pred) != len(labels) {
		panic(fmt.Sprintf("nn: %d predictions for %d labels", len(pred), len(labels)))
	}
	if len(labels) == 0 {
		return 0
	}
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}
