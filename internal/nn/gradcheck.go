package nn

import (
	"fmt"

	"medsplit/internal/rng"
	"medsplit/internal/tensor"
)

// GradCheck numerically verifies a layer's backward pass.
//
// It builds the scalar objective f(x, θ) = <Forward(x), R> for a fixed
// random cotangent R, computes analytic gradients with one
// Forward/Backward pair, then compares every coordinate (up to
// maxCoords per tensor, sampled deterministically) against the central
// finite difference (f(v+ε) − f(v−ε)) / 2ε.
//
// Layers with stochastic forward passes (Dropout) cannot be checked this
// way; their tests verify mask consistency instead.
type GradCheck struct {
	Eps       float32 // perturbation, default 1e-2 (float32 sweet spot)
	Tol       float64 // max |analytic − numeric| / max(1, |numeric|), default 2e-2
	MaxCoords int     // per-tensor coordinate budget, default 64
	Seed      uint64  // cotangent seed
}

// Check runs the gradient check for layer l at input x. It returns an
// error describing the first failing coordinate, or nil.
func (gc GradCheck) Check(l Layer, x *tensor.Tensor) error {
	eps := gc.Eps
	if eps == 0 {
		eps = 1e-2
	}
	tol := gc.Tol
	if tol == 0 {
		tol = 2e-2
	}
	maxCoords := gc.MaxCoords
	if maxCoords == 0 {
		maxCoords = 64
	}
	r := rng.New(gc.Seed + 0x5eed)

	// Fixed cotangent; created after one probe forward to learn the
	// output shape.
	probe := l.Forward(x, true)
	cot := tensor.New(probe.Shape()...)
	cot.FillNormal(r, 0, 1)

	objective := func() float64 {
		return tensor.Dot(l.Forward(x, true), cot)
	}

	// Analytic pass.
	ZeroGrads(l.Params())
	_ = l.Forward(x, true)
	dx := l.Backward(cot)

	// Numeric check of input gradient.
	if err := gc.checkTensor("input", x, dx, objective, eps, tol, maxCoords, r); err != nil {
		return err
	}
	// Numeric check of each parameter gradient.
	for _, p := range l.Params() {
		if err := gc.checkTensor(p.Name, p.W, p.G, objective, eps, tol, maxCoords, r); err != nil {
			return err
		}
	}
	return nil
}

func (gc GradCheck) checkTensor(name string, v, analytic *tensor.Tensor, objective func() float64, eps float32, tol float64, maxCoords int, r *rng.RNG) error {
	n := v.Size()
	coords := make([]int, 0, maxCoords)
	if n <= maxCoords {
		for i := 0; i < n; i++ {
			coords = append(coords, i)
		}
	} else {
		perm := r.Perm(n)
		coords = append(coords, perm[:maxCoords]...)
	}
	data := v.Data()
	ad := analytic.Data()
	for _, i := range coords {
		orig := data[i]
		data[i] = orig + eps
		fPlus := objective()
		data[i] = orig - eps
		fMinus := objective()
		data[i] = orig
		numeric := (fPlus - fMinus) / (2 * float64(eps))
		diff := float64(ad[i]) - numeric
		if diff < 0 {
			diff = -diff
		}
		scale := 1.0
		if numeric > 1 || numeric < -1 {
			if numeric < 0 {
				scale = -numeric
			} else {
				scale = numeric
			}
		}
		if diff/scale > tol {
			return fmt.Errorf("nn: gradcheck %s[%d]: analytic %v vs numeric %v (rel %v)",
				name, i, ad[i], numeric, diff/scale)
		}
	}
	return nil
}
