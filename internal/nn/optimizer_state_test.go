package nn

import (
	"math"
	"testing"

	"medsplit/internal/rng"
	"medsplit/internal/tensor"
)

// optTestParams builds a small deterministic parameter set with
// non-zero gradients.
func optTestParams(seed uint64, n int) []*Param {
	r := rng.New(seed)
	params := make([]*Param, n)
	for i := range params {
		w := tensor.New(3, 4)
		g := tensor.New(3, 4)
		wd, gd := w.Data(), g.Data()
		for j := range wd {
			wd[j] = r.NormFloat32()
			gd[j] = r.NormFloat32()
		}
		params[i] = &Param{Name: "p", W: w, G: g}
		params[i].G.CopyFrom(g)
	}
	return params
}

func stepsBitIdentical(t *testing.T, mk func() Optimizer) {
	t.Helper()
	// Reference: 10 uninterrupted steps.
	ref := optTestParams(11, 3)
	refOpt := mk()
	for s := 0; s < 10; s++ {
		refOpt.Step(ref)
	}

	// Interrupted: 4 steps, capture, restore into a FRESH optimizer over
	// a fresh (but identical) parameter set, 6 more steps.
	a := optTestParams(11, 3)
	aOpt := mk()
	for s := 0; s < 4; s++ {
		aOpt.Step(a)
	}
	st := CaptureOptimizerState(aOpt, a)

	b := optTestParams(11, 3)
	for i := range b {
		b[i].W.CopyFrom(a[i].W) // weights travel via the model checkpoint
	}
	bOpt := mk()
	if err := RestoreOptimizerState(bOpt, b, st); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 6; s++ {
		bOpt.Step(b)
	}

	for i := range ref {
		x, y := ref[i].W.Data(), b[i].W.Data()
		for j := range x {
			if math.Float32bits(x[j]) != math.Float32bits(y[j]) {
				t.Fatalf("param %d scalar %d: resumed %v, uninterrupted %v", i, j, y[j], x[j])
			}
		}
	}
}

// Capture-at-step-4 + restore must land bit-identical to 10
// uninterrupted steps for every stateful optimizer.
func TestOptimizerStateRoundTrip(t *testing.T) {
	t.Run("sgd", func(t *testing.T) {
		stepsBitIdentical(t, func() Optimizer { return &SGD{LR: 0.05, WeightDecay: 0.01} })
	})
	t.Run("momentum", func(t *testing.T) {
		stepsBitIdentical(t, func() Optimizer { return &Momentum{LR: 0.05, Mu: 0.9} })
	})
	t.Run("adam", func(t *testing.T) {
		stepsBitIdentical(t, func() Optimizer { return &Adam{LR: 0.01} })
	})
}

// Captured tensors are deep copies: stepping the live optimizer after
// capture must not mutate the snapshot.
func TestOptimizerCaptureIsDeepCopy(t *testing.T) {
	params := optTestParams(13, 2)
	opt := &Momentum{LR: 0.1, Mu: 0.9}
	opt.Step(params)
	st := opt.CaptureState(params)
	before := append([]float32(nil), st.Tensors[0].Data()...)
	opt.Step(params)
	after := st.Tensors[0].Data()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("captured state aliased live optimizer buffers")
		}
	}
}

// Restore must reject mismatched state.
func TestOptimizerRestoreRejectsMismatch(t *testing.T) {
	params := optTestParams(17, 2)
	mom := &Momentum{LR: 0.1, Mu: 0.9}
	if err := mom.RestoreState(params, OptimizerState{Tensors: []*tensor.Tensor{tensor.New(1)}}); err == nil {
		t.Fatal("momentum accepted a state with the wrong tensor count")
	}
	adam := &Adam{LR: 0.1}
	if err := adam.RestoreState(params, OptimizerState{Scalars: []uint64{1, 2}, Tensors: make([]*tensor.Tensor, 4)}); err == nil {
		t.Fatal("adam accepted a state with the wrong scalar count")
	}
	sgd := &SGD{LR: 0.1}
	if err := RestoreOptimizerState(sgd, params, OptimizerState{Scalars: []uint64{1}}); err == nil {
		t.Fatal("stateless SGD accepted a stateful checkpoint")
	}
}
