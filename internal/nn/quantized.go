package nn

import (
	"fmt"
	"math"

	"medsplit/internal/tensor"
	"medsplit/internal/tensor/kernels"
)

// This file holds the reduced-precision inference wrappers: the f16
// weight walker and the int8 quantized-inference model. Both are
// eval-only transforms of a trained network — training always runs in
// f32.

// EnableF16Weights walks a layer tree and switches every Dense layer's
// eval path onto half-precision weight storage (see Dense.EnableF16).
// It returns the number of layers converted. The tree must be frozen:
// the f16 packs are snapshots that training steps do not refresh.
func EnableF16Weights(l Layer) int {
	switch v := l.(type) {
	case *Sequential:
		n := 0
		for _, child := range v.layers {
			n += EnableF16Weights(child)
		}
		return n
	case *Residual:
		n := EnableF16Weights(v.body)
		if v.skip != nil {
			n += EnableF16Weights(v.skip)
		}
		return n
	case *Dense:
		v.EnableF16()
		return 1
	default:
		return 0
	}
}

// QuantizedInference is an eval-only int8 view of a trained Sequential:
// every top-level Dense layer (including those inside nested
// Sequentials) is replaced by a quantized twin that stores its weights
// as symmetric per-tensor int8, quantizes activations dynamically with
// a per-tensor affine scale+zero-point, accumulates the matmul in
// int32, and dequantizes back to f32 at the layer boundary. All other
// layers (activations, conv, pooling, residual blocks) run in f32
// unchanged, so the wrapper composes with any architecture — only the
// Dense GEMMs, which dominate the serving back-half, change precision.
//
// Accuracy contract: weights round to 1 of 127 levels of their max
// magnitude (≲0.4% per-weight relative error), activations to 1 of 255
// levels of their observed batch range. The int32 accumulation is
// exact, so the per-output error is a weighted sum of those rounding
// errors — logits track the f32 model to ~1e-2 absolute for unit-scale
// inputs, which leaves argmax decisions intact except on near-ties.
// Callers that need bit-identical logits must stay on f32.
type QuantizedInference struct {
	name   string
	layers []Layer
}

var _ Layer = (*QuantizedInference)(nil)

// NewQuantizedInference builds the int8 view of s. The source model is
// not modified and must stay frozen while the view is in use: weights
// are snapshotted at construction, and non-Dense layers are shared with
// the source (their eval forwards are stateless).
func NewQuantizedInference(s *Sequential) *QuantizedInference {
	out := make([]Layer, len(s.layers))
	for i, l := range s.layers {
		switch v := l.(type) {
		case *Dense:
			out[i] = newQDense(v)
		case *Sequential:
			out[i] = NewQuantizedInference(v)
		default:
			out[i] = l
		}
	}
	return &QuantizedInference{name: s.name + ".int8", layers: out}
}

// Name identifies the quantized view in diagnostics.
func (q *QuantizedInference) Name() string { return q.name }

// Forward runs eval-mode inference. train must be false: the quantized
// view has no gradients to cache.
func (q *QuantizedInference) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		panic(fmt.Sprintf("nn: %s: train-mode Forward on a quantized inference model", q.name))
	}
	for _, l := range q.layers {
		x = l.Forward(x, false)
	}
	return x
}

// Backward panics: quantized views are inference-only.
func (q *QuantizedInference) Backward(*tensor.Tensor) *tensor.Tensor {
	panic(fmt.Sprintf("nn: %s: Backward on a quantized inference model", q.name))
}

// Params returns nil: the quantized weights are not trainable.
func (q *QuantizedInference) Params() []*Param { return nil }

// qDense is the int8 twin of a Dense layer.
//
// Weights are quantized symmetrically per tensor: sw = max|W|/127,
// qw = round(W/sw) ∈ [-127, 127], stored transposed as [out][in] rows
// so each output's dot product streams one contiguous row. Activations
// quantize per forward call with an affine map qx = round(x/sx) + zpx
// clamped to [-128, 127], so x ≈ sx·(qx − zpx). Then
//
//	y[j] = Σᵢ x[i]·W[i][j] + b[j]
//	     ≈ sx·sw·(Σᵢ qx[i]·qw[j][i] − zpx·Σᵢ qw[j][i]) + b[j]
//
// with the Σ qx·qw term accumulated exactly in int32 by kernels.DotI8
// and the per-row weight sums (wsum) precomputed at construction.
type qDense struct {
	name    string
	in, out int
	qw      []int8  // [out][in] transposed quantized weights
	wsum    []int32 // per-output-row Σ qw
	sw      float32
	bias    []float32

	y  *tensor.Tensor // forward output scratch
	qx []int8         // activation quantization scratch
}

func newQDense(d *Dense) *qDense {
	in, out := d.In(), d.Out()
	wd := d.w.W.Data()
	q := &qDense{
		name: d.name + ".int8",
		in:   in, out: out,
		qw:   make([]int8, in*out),
		wsum: make([]int32, out),
		bias: d.b.W.Data(),
	}
	var maxAbs float32
	for _, v := range wd {
		if a := float32(math.Abs(float64(v))); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		q.sw = 1 // all-zero weights quantize to all-zero at any scale
	} else {
		q.sw = maxAbs / 127
	}
	for i := 0; i < in; i++ {
		for j := 0; j < out; j++ {
			v := int32(math.RoundToEven(float64(wd[i*out+j] / q.sw)))
			if v > 127 {
				v = 127
			} else if v < -127 {
				v = -127
			}
			q.qw[j*in+i] = int8(v)
			q.wsum[j] += v
		}
	}
	return q
}

func (q *qDense) Name() string { return q.name }

func (q *qDense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		panic(fmt.Sprintf("nn: %s: train-mode Forward on a quantized layer", q.name))
	}
	if x.Rank() != 2 || x.Dim(1) != q.in {
		panic(fmt.Sprintf("nn: %s: quantized input shape %v, want [batch, %d]", q.name, x.Shape(), q.in))
	}
	batch := x.Dim(0)
	xd := x.Data()

	// Dynamic per-tensor affine quantization of the activations.
	sx, zpx := quantRange(xd)
	if cap(q.qx) < len(xd) {
		q.qx = make([]int8, len(xd))
	}
	qx := q.qx[:len(xd)]
	inv := 1 / sx
	for i, v := range xd {
		t := int32(math.RoundToEven(float64(v*inv))) + zpx
		if t > 127 {
			t = 127
		} else if t < -128 {
			t = -128
		}
		qx[i] = int8(t)
	}

	q.y = tensor.EnsureShape(q.y, batch, q.out)
	yd := q.y.Data()
	scale := sx * q.sw
	for r := 0; r < batch; r++ {
		row := qx[r*q.in : (r+1)*q.in]
		for j := 0; j < q.out; j++ {
			dot := kernels.DotI8(row, q.qw[j*q.in:(j+1)*q.in])
			// int64: dot and zpx·wsum each fit int32, their difference
			// may not.
			acc := int64(dot) - int64(zpx)*int64(q.wsum[j])
			yd[r*q.out+j] = scale*float32(acc) + q.bias[j]
		}
	}
	return q.y
}

func (q *qDense) Backward(*tensor.Tensor) *tensor.Tensor {
	panic(fmt.Sprintf("nn: %s: Backward on a quantized layer", q.name))
}

func (q *qDense) Params() []*Param { return nil }

// quantRange picks the affine quantization parameters for d: scale sx
// and zero-point zpx such that qx = round(x/sx) + zpx covers d's
// min..max within [-128, 127] and x ≈ sx·(qx − zpx). Degenerate ranges
// (constant input) collapse to a symmetric exact representation.
func quantRange(d []float32) (sx float32, zpx int32) {
	if len(d) == 0 {
		return 1, 0
	}
	lo, hi := d[0], d[0]
	for _, v := range d[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		if lo == 0 {
			return 1, 0
		}
		// Constant input: map it exactly onto ±127.
		return float32(math.Abs(float64(lo))) / 127, 0
	}
	// The range must bracket zero so that zero activations (padding,
	// ReLU floors) stay exactly representable.
	if lo > 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	sx = (hi - lo) / 255
	// Place the zero-point so lo maps to -128: zpx = -128 - round(lo/sx).
	zpx = -128 - int32(math.RoundToEven(float64(lo/sx)))
	if zpx > 127 {
		zpx = 127
	} else if zpx < -128 {
		zpx = -128
	}
	return sx, zpx
}
