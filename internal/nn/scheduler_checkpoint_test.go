package nn

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"testing"

	"medsplit/internal/rng"
	"medsplit/internal/tensor"
)

func TestConstantLR(t *testing.T) {
	s := ConstantLR(0.1)
	if s(0) != 0.1 || s(1000) != 0.1 {
		t.Fatal("constant schedule varied")
	}
}

func TestStepDecay(t *testing.T) {
	s := StepDecay(1.0, 0.5, 10)
	cases := map[int]float32{0: 1, 9: 1, 10: 0.5, 19: 0.5, 20: 0.25}
	for round, want := range cases {
		if got := s(round); math.Abs(float64(got-want)) > 1e-6 {
			t.Errorf("round %d: lr %v, want %v", round, got, want)
		}
	}
	assertPanics(t, "bad every", func() { StepDecay(1, 0.5, 0) })
}

func TestCosineDecay(t *testing.T) {
	s := CosineDecay(1.0, 0.1, 100)
	if s(0) != 1.0 {
		t.Fatalf("start %v", s(0))
	}
	mid := s(50)
	if mid < 0.5 || mid > 0.6 { // (1+0.1)/2 = 0.55
		t.Fatalf("midpoint %v", mid)
	}
	if got := s(100); got != 0.1 {
		t.Fatalf("end %v", got)
	}
	if got := s(500); got != 0.1 {
		t.Fatalf("past end %v", got)
	}
	// Monotone non-increasing.
	prev := float32(math.MaxFloat32)
	for r := 0; r <= 100; r += 5 {
		if s(r) > prev {
			t.Fatalf("schedule increased at round %d", r)
		}
		prev = s(r)
	}
	assertPanics(t, "bad total", func() { CosineDecay(1, 0, 0) })
}

func TestApplySchedule(t *testing.T) {
	opt := &SGD{LR: 1}
	if !ApplySchedule(opt, StepDecay(1, 0.1, 5), 5) {
		t.Fatal("schedule not applied")
	}
	if math.Abs(float64(opt.LR-0.1)) > 1e-7 {
		t.Fatalf("LR %v, want 0.1", opt.LR)
	}
	if ApplySchedule(opt, nil, 0) {
		t.Fatal("nil schedule applied")
	}
	// All optimizers are adjustable.
	for _, o := range []Optimizer{&SGD{}, &Momentum{}, &Adam{}} {
		if !ApplySchedule(o, ConstantLR(0.3), 0) {
			t.Fatalf("%s not adjustable", o.Name())
		}
	}
}

// buildBNModel gives checkpoint tests a model with both params and
// state.
func buildBNModel(seed uint64) *Sequential {
	r := rng.New(seed)
	return NewSequential("ckpt-model",
		NewDense("fc1", 6, 8, r),
		NewBatchNorm("bn", 8),
		NewTanh("tanh"),
		NewDense("head", 8, 3, r),
	)
}

func TestCheckpointRoundTrip(t *testing.T) {
	src := buildBNModel(1)
	// Move the state off its initialization.
	x := tensor.New(16, 6)
	x.FillNormal(rng.New(2), 1, 2)
	src.Forward(x, true)

	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, src.Params(), CollectState(src)); err != nil {
		t.Fatal(err)
	}
	dst := buildBNModel(99) // different init
	if err := LoadCheckpoint(&buf, dst.Params(), CollectState(dst)); err != nil {
		t.Fatal(err)
	}
	for i, p := range src.Params() {
		if !tensor.AllClose(p.W, dst.Params()[i].W, 0) {
			t.Fatalf("param %d differs after restore", i)
		}
	}
	srcState, dstState := CollectState(src), CollectState(dst)
	for i := range srcState {
		if !tensor.AllClose(srcState[i], dstState[i], 0) {
			t.Fatalf("state %d differs after restore", i)
		}
	}
	// Restored model computes identically.
	if !tensor.AllClose(src.Forward(x, false), dst.Forward(x, false), 0) {
		t.Fatal("restored model diverges")
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	src := buildBNModel(3)
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := SaveCheckpointFile(path, src.Params(), CollectState(src)); err != nil {
		t.Fatal(err)
	}
	dst := buildBNModel(77)
	if err := LoadCheckpointFile(path, dst.Params(), CollectState(dst)); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(src.Params()[0].W, dst.Params()[0].W, 0) {
		t.Fatal("file round trip lost weights")
	}
	if err := LoadCheckpointFile(filepath.Join(t.TempDir(), "missing.ckpt"), dst.Params(), CollectState(dst)); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCheckpointRejectsMismatches(t *testing.T) {
	src := buildBNModel(4)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, src.Params(), CollectState(src)); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Wrong architecture (different widths).
	other := NewSequential("other", NewDense("fc", 6, 4, rng.New(5)))
	if err := LoadCheckpoint(bytes.NewReader(good), other.Params(), nil); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("wrong arch: %v", err)
	}
	// Corrupt magic.
	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	dst := buildBNModel(4)
	if err := LoadCheckpoint(bytes.NewReader(bad), dst.Params(), CollectState(dst)); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("bad magic: %v", err)
	}
	// Truncation.
	if err := LoadCheckpoint(bytes.NewReader(good[:len(good)-5]), dst.Params(), CollectState(dst)); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("truncated: %v", err)
	}
	// Trailing garbage.
	if err := LoadCheckpoint(bytes.NewReader(append(append([]byte(nil), good...), 1, 2)), dst.Params(), CollectState(dst)); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("trailing: %v", err)
	}
}

func TestCollectStateCoversNestedContainers(t *testing.T) {
	r := rng.New(6)
	body := NewSequential("body",
		NewConv2D("c1", 2, 2, 3, 3, 1, 1, r),
		NewBatchNorm("bn1", 2),
	)
	skip := NewSequential("skip", NewBatchNorm("bn2", 2))
	net := NewSequential("net",
		NewBatchNorm("bn0", 2),
		NewResidual("res", body, skip),
	)
	// bn0 + bn1 + bn2 → 3 BN layers × 2 tensors.
	if got := len(CollectState(net)); got != 6 {
		t.Fatalf("collected %d state tensors, want 6", got)
	}
	// Stateless models yield nil.
	if got := CollectState(NewSequential("plain", NewDense("fc", 2, 2, r))); len(got) != 0 {
		t.Fatalf("stateless model yielded %d tensors", len(got))
	}
}

func TestEncodeDecodeModelWithState(t *testing.T) {
	src := buildBNModel(7)
	x := tensor.New(8, 6)
	x.FillNormal(rng.New(8), 0, 1)
	src.Forward(x, true) // move BN stats

	dst := buildBNModel(11)
	buf := EncodeModel(src.Params(), CollectState(src))
	if err := DecodeModelInto(dst.Params(), CollectState(dst), buf); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(src.Forward(x, false), dst.Forward(x, false), 0) {
		t.Fatal("model+state decode diverges")
	}
	if err := DecodeModelInto(dst.Params(), CollectState(dst), buf[:9]); err == nil {
		t.Fatal("truncated model accepted")
	}
}

func TestAverageStateInto(t *testing.T) {
	mk := func(v float32) []*tensor.Tensor {
		return []*tensor.Tensor{tensor.Full(v, 3)}
	}
	dst := mk(0)
	if err := AverageStateInto(dst, [][]*tensor.Tensor{mk(2), mk(6)}, []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if dst[0].At(0) != 4 {
		t.Fatalf("uniform average %v", dst[0].At(0))
	}
	if err := AverageStateInto(dst, [][]*tensor.Tensor{mk(2), mk(6)}, []float64{3, 1}); err != nil {
		t.Fatal(err)
	}
	if dst[0].At(0) != 3 {
		t.Fatalf("weighted average %v", dst[0].At(0))
	}
	if err := AverageStateInto(dst, nil, nil); err == nil {
		t.Fatal("no sources accepted")
	}
	if err := AverageStateInto(dst, [][]*tensor.Tensor{mk(1)}, []float64{0}); err == nil {
		t.Fatal("zero weights accepted")
	}
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}
