package nn

import (
	"fmt"

	"medsplit/internal/rng"
	"medsplit/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW input, lowered to matrix
// multiplication with im2col. Weights are stored as
// [outC, inC*kh*kw] so both forward and backward are single GEMMs.
type Conv2D struct {
	name        string
	inC, outC   int
	kh, kw      int
	stride, pad int
	w           *Param // [outC, inC*kh*kw]
	b           *Param // [outC]
	cols        *tensor.Tensor
	n, inH, inW int
	outH, outW  int
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D builds a conv layer with He initialization. A 3×3 stride-1
// pad-1 configuration preserves spatial size ("same" convolution).
func NewConv2D(name string, inC, outC, kh, kw, stride, pad int, r *rng.RNG) *Conv2D {
	fanIn := inC * kh * kw
	w := tensor.New(outC, fanIn)
	w.HeInit(r, fanIn)
	return &Conv2D{
		name: name, inC: inC, outC: outC,
		kh: kh, kw: kw, stride: stride, pad: pad,
		w: NewParam(name+".w", w),
		b: NewParam(name+".b", tensor.New(outC)),
	}
}

// Name returns the layer name.
func (c *Conv2D) Name() string { return c.name }

// Forward computes the convolution of x [n, inC, h, w].
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.inC {
		panic(fmt.Sprintf("nn: %s: Conv2D input %v, want [n,%d,h,w]", c.name, x.Shape(), c.inC))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh := tensor.ConvOutSize(h, c.kh, c.stride, c.pad)
	ow := tensor.ConvOutSize(w, c.kw, c.stride, c.pad)
	cols := tensor.Im2Col(x, c.kh, c.kw, c.stride, c.pad)
	rows := tensor.MatMulTB(cols, c.w.W) // [n*oh*ow, outC]
	rows.AddRowVector(c.b.W)
	if train {
		c.cols = cols
		c.n, c.inH, c.inW = n, h, w
		c.outH, c.outW = oh, ow
	}
	return tensor.RowsToNCHW(rows, n, c.outC, oh, ow)
}

// Backward consumes grad [n, outC, oh, ow].
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.cols == nil {
		panic(fmt.Sprintf("nn: %s: Backward before train-mode Forward", c.name))
	}
	gRows := tensor.NCHWToRows(grad) // [n*oh*ow, outC]
	c.w.G.AddInPlace(tensor.MatMulTA(gRows, c.cols))
	c.b.G.AddInPlace(tensor.SumRows(gRows))
	dCols := tensor.MatMul(gRows, c.w.W) // [n*oh*ow, inC*kh*kw]
	return tensor.Col2Im(dCols, c.n, c.inC, c.inH, c.inW, c.kh, c.kw, c.stride, c.pad)
}

// Params returns the kernel and bias parameters.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }
