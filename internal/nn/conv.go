package nn

import (
	"fmt"

	"medsplit/internal/rng"
	"medsplit/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW input, lowered to matrix
// multiplication with im2col. Weights are stored as
// [outC, inC*kh*kw] so both forward and backward are single GEMMs.
//
// The layer owns persistent scratch (the im2col column matrix and the
// backward gradient matrices) that is reused across calls instead of
// allocated per call. The scratch is shared between train and eval
// forwards, so Backward must run before the next Forward of any kind —
// the invariant every training loop in this codebase already satisfies
// (forward → backward → step, with evaluation only between rounds).
type Conv2D struct {
	name        string
	inC, outC   int
	kh, kw      int
	stride, pad int
	w           *Param // [outC, inC*kh*kw]
	b           *Param // [outC]

	cols        *tensor.Tensor // persistent im2col scratch, valid after any Forward
	gRows       *tensor.Tensor // backward scratch: grad in rows layout
	dCols       *tensor.Tensor // backward scratch: column-matrix gradient
	out         *tensor.Tensor // forward output scratch (same lifetime contract)
	dx          *tensor.Tensor // backward input-gradient scratch
	n, inH, inW int
	outH, outW  int
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D builds a conv layer with He initialization. A 3×3 stride-1
// pad-1 configuration preserves spatial size ("same" convolution).
func NewConv2D(name string, inC, outC, kh, kw, stride, pad int, r *rng.RNG) *Conv2D {
	fanIn := inC * kh * kw
	w := tensor.New(outC, fanIn)
	w.HeInit(r, fanIn)
	return &Conv2D{
		name: name, inC: inC, outC: outC,
		kh: kh, kw: kw, stride: stride, pad: pad,
		w: NewParam(name+".w", w),
		b: NewParam(name+".b", tensor.New(outC)),
	}
}

// Name returns the layer name.
func (c *Conv2D) Name() string { return c.name }

// Forward computes the convolution of x [n, inC, h, w] with the fused
// im2col → GEMM → NCHW path: the column matrix is built into reusable
// scratch and the GEMM writes the NCHW output (bias included) directly,
// skipping the intermediate rows matrix and its repack pass.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.inC {
		panic(fmt.Sprintf("nn: %s: Conv2D input %v, want [n,%d,h,w]", c.name, x.Shape(), c.inC))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh := tensor.ConvOutSize(h, c.kh, c.stride, c.pad)
	ow := tensor.ConvOutSize(w, c.kw, c.stride, c.pad)
	c.cols = tensor.EnsureShape(c.cols, n*oh*ow, c.inC*c.kh*c.kw)
	tensor.Im2ColInto(c.cols, x, c.kh, c.kw, c.stride, c.pad)
	c.out = tensor.EnsureShape(c.out, n, c.outC, oh, ow)
	out := c.out
	tensor.ConvGemmInto(out, c.cols, c.w.W, c.b.W)
	if train {
		c.n, c.inH, c.inW = n, h, w
		c.outH, c.outW = oh, ow
	} else {
		// Eval overwrites the shared cols scratch; invalidate the
		// backward cache so a Backward after an interleaved eval
		// Forward panics instead of mixing stale geometry with the
		// eval batch's columns.
		c.n = 0
	}
	return out
}

// Backward consumes grad [n, outC, oh, ow]. Weight and bias gradients
// accumulate in place (no temporary product tensors) and the two large
// intermediates reuse layer-owned scratch across rounds.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.cols == nil || c.n == 0 {
		panic(fmt.Sprintf("nn: %s: Backward before train-mode Forward", c.name))
	}
	rows := c.n * c.outH * c.outW
	c.gRows = tensor.EnsureShape(c.gRows, rows, c.outC)
	tensor.NCHWToRowsInto(c.gRows, grad) // [n*oh*ow, outC]
	tensor.MatMulTAAcc(c.w.G, c.gRows, c.cols)
	tensor.SumRowsAcc(c.b.G, c.gRows)
	c.dCols = tensor.EnsureShape(c.dCols, rows, c.inC*c.kh*c.kw)
	tensor.MatMulInto(c.dCols, c.gRows, c.w.W) // [n*oh*ow, inC*kh*kw]
	// Col2ImInto zeroes dst before accumulating, so dirty scratch is fine.
	c.dx = tensor.EnsureShape(c.dx, c.n, c.inC, c.inH, c.inW)
	return tensor.Col2ImInto(c.dx, c.dCols, c.kh, c.kw, c.stride, c.pad)
}

// Params returns the kernel and bias parameters.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }
