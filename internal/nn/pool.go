package nn

import (
	"fmt"

	"medsplit/internal/tensor"
)

// MaxPool2D is a max-pooling layer over NCHW input with a square window.
type MaxPool2D struct {
	name      string
	k, stride int
	argmax    []int // flat input index of each output's max
	inShape   []int
	out       *tensor.Tensor // forward output scratch (layer lifetime contract)
	dx        *tensor.Tensor // backward input-gradient scratch
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D builds a k×k max pool with the given stride (use k ==
// stride for the classic non-overlapping pool).
func NewMaxPool2D(name string, k, stride int) *MaxPool2D {
	return &MaxPool2D{name: name, k: k, stride: stride}
}

// Name returns the layer name.
func (m *MaxPool2D) Name() string { return m.name }

// Forward pools x [n, c, h, w] down to [n, c, oh, ow].
func (m *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: %s: MaxPool2D input %v, want rank 4", m.name, x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := tensor.ConvOutSize(h, m.k, m.stride, 0)
	ow := tensor.ConvOutSize(w, m.k, m.stride, 0)
	m.out = tensor.EnsureShape(m.out, n, c, oh, ow)
	out := m.out // every element is written below
	var argmax []int
	if train {
		// Reuse the layer-owned index buffer across rounds; every entry
		// is overwritten below.
		if need := n * c * oh * ow; cap(m.argmax) < need {
			argmax = make([]int, need)
		} else {
			argmax = m.argmax[:need]
		}
	}
	xd, od := x.Data(), out.Data()
	for in := 0; in < n; in++ {
		for ch := 0; ch < c; ch++ {
			base := (in*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					iy0, ix0 := oy*m.stride, ox*m.stride
					bestIdx := base + iy0*w + ix0
					best := xd[bestIdx]
					for ky := 0; ky < m.k; ky++ {
						iy := iy0 + ky
						if iy >= h {
							break
						}
						for kx := 0; kx < m.k; kx++ {
							ix := ix0 + kx
							if ix >= w {
								break
							}
							idx := base + iy*w + ix
							if xd[idx] > best {
								best, bestIdx = xd[idx], idx
							}
						}
					}
					oIdx := ((in*c+ch)*oh+oy)*ow + ox
					od[oIdx] = best
					if train {
						argmax[oIdx] = bestIdx
					}
				}
			}
		}
	}
	if train {
		m.argmax = argmax
		m.inShape = x.Shape()
	}
	return out
}

// Backward routes each output gradient to the input position that won the
// max.
func (m *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if m.argmax == nil {
		panic(fmt.Sprintf("nn: %s: Backward before train-mode Forward", m.name))
	}
	if grad.Size() != len(m.argmax) {
		panic(fmt.Sprintf("nn: %s: gradient size %d, want %d", m.name, grad.Size(), len(m.argmax)))
	}
	m.dx = tensor.EnsureShape(m.dx, m.inShape...)
	m.dx.Zero() // scatter-accumulate below needs a clean slate
	dx := m.dx
	dd, gd := dx.Data(), grad.Data()
	for oIdx, iIdx := range m.argmax {
		dd[iIdx] += gd[oIdx]
	}
	return dx
}

// Params returns nil: pooling has no trainable parameters.
func (m *MaxPool2D) Params() []*Param { return nil }

// GlobalAvgPool averages each channel's spatial plane, mapping
// [n, c, h, w] to [n, c]. ResNet-style models use it before the
// classifier head.
type GlobalAvgPool struct {
	name    string
	inShape []int
	out     *tensor.Tensor
	dx      *tensor.Tensor
}

var _ Layer = (*GlobalAvgPool)(nil)

// NewGlobalAvgPool builds the layer.
func NewGlobalAvgPool(name string) *GlobalAvgPool {
	return &GlobalAvgPool{name: name}
}

// Name returns the layer name.
func (g *GlobalAvgPool) Name() string { return g.name }

// Forward averages over H and W.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: %s: GlobalAvgPool input %v, want rank 4", g.name, x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	g.out = tensor.EnsureShape(g.out, n, c)
	out := g.out // every element is written below
	xd := x.Data()
	inv := 1 / float32(h*w)
	for in := 0; in < n; in++ {
		for ch := 0; ch < c; ch++ {
			base := (in*c + ch) * h * w
			var s float32
			for i := 0; i < h*w; i++ {
				s += xd[base+i]
			}
			out.Set(s*inv, in, ch)
		}
	}
	if train {
		g.inShape = x.Shape()
	}
	return out
}

// Backward spreads each channel gradient uniformly over its plane.
func (g *GlobalAvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if g.inShape == nil {
		panic(fmt.Sprintf("nn: %s: Backward before train-mode Forward", g.name))
	}
	n, c, h, w := g.inShape[0], g.inShape[1], g.inShape[2], g.inShape[3]
	g.dx = tensor.EnsureShape(g.dx, g.inShape...)
	dx := g.dx // every element is written below
	dd := dx.Data()
	inv := 1 / float32(h*w)
	for in := 0; in < n; in++ {
		for ch := 0; ch < c; ch++ {
			gv := grad.At(in, ch) * inv
			base := (in*c + ch) * h * w
			for i := 0; i < h*w; i++ {
				dd[base+i] = gv
			}
		}
	}
	return dx
}

// Params returns nil: pooling has no trainable parameters.
func (g *GlobalAvgPool) Params() []*Param { return nil }

// AvgPool2D averages non-overlapping (or strided) square windows over
// NCHW input — the gentler sibling of MaxPool2D, used by VGG-style
// variants that prefer average downsampling.
type AvgPool2D struct {
	name      string
	k, stride int
	inShape   []int
	out       *tensor.Tensor
	dx        *tensor.Tensor
}

var _ Layer = (*AvgPool2D)(nil)

// NewAvgPool2D builds a k×k average pool with the given stride.
func NewAvgPool2D(name string, k, stride int) *AvgPool2D {
	return &AvgPool2D{name: name, k: k, stride: stride}
}

// Name returns the layer name.
func (a *AvgPool2D) Name() string { return a.name }

// Forward pools x [n, c, h, w] down to [n, c, oh, ow].
func (a *AvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: %s: AvgPool2D input %v, want rank 4", a.name, x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := tensor.ConvOutSize(h, a.k, a.stride, 0)
	ow := tensor.ConvOutSize(w, a.k, a.stride, 0)
	a.out = tensor.EnsureShape(a.out, n, c, oh, ow)
	out := a.out // every element is written below
	xd, od := x.Data(), out.Data()
	inv := 1 / float32(a.k*a.k)
	for in := 0; in < n; in++ {
		for ch := 0; ch < c; ch++ {
			base := (in*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					iy0, ix0 := oy*a.stride, ox*a.stride
					var s float32
					for ky := 0; ky < a.k; ky++ {
						for kx := 0; kx < a.k; kx++ {
							s += xd[base+(iy0+ky)*w+ix0+kx]
						}
					}
					od[((in*c+ch)*oh+oy)*ow+ox] = s * inv
				}
			}
		}
	}
	if train {
		a.inShape = x.Shape()
	}
	return out
}

// Backward spreads each output gradient uniformly across its window.
// Overlapping windows (stride < k) accumulate.
func (a *AvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if a.inShape == nil {
		panic(fmt.Sprintf("nn: %s: Backward before train-mode Forward", a.name))
	}
	n, c, h, w := a.inShape[0], a.inShape[1], a.inShape[2], a.inShape[3]
	oh, ow := grad.Dim(2), grad.Dim(3)
	a.dx = tensor.EnsureShape(a.dx, a.inShape...)
	a.dx.Zero() // overlapping windows accumulate below
	dx := a.dx
	dd, gd := dx.Data(), grad.Data()
	inv := 1 / float32(a.k*a.k)
	for in := 0; in < n; in++ {
		for ch := 0; ch < c; ch++ {
			base := (in*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := gd[((in*c+ch)*oh+oy)*ow+ox] * inv
					iy0, ix0 := oy*a.stride, ox*a.stride
					for ky := 0; ky < a.k; ky++ {
						for kx := 0; kx < a.k; kx++ {
							dd[base+(iy0+ky)*w+ix0+kx] += g
						}
					}
				}
			}
		}
	}
	return dx
}

// Params returns nil: pooling has no trainable parameters.
func (a *AvgPool2D) Params() []*Param { return nil }
