package nn

import (
	"math"
	"testing"

	"medsplit/internal/rng"
	"medsplit/internal/tensor"
)

func TestCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over 4 classes: loss = ln(4).
	logits := tensor.New(2, 4)
	loss, grad := SoftmaxCrossEntropy{}.Loss(logits, []int{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-6 {
		t.Fatalf("loss = %v, want ln4 = %v", loss, math.Log(4))
	}
	// Gradient rows sum to zero (softmax minus one-hot).
	for i := 0; i < 2; i++ {
		var s float64
		for c := 0; c < 4; c++ {
			s += float64(grad.At(i, c))
		}
		if math.Abs(s) > 1e-6 {
			t.Fatalf("grad row %d sums to %v", i, s)
		}
	}
}

func TestCrossEntropyGradientNumeric(t *testing.T) {
	r := rng.New(1)
	logits := tensor.New(3, 5)
	logits.FillNormal(r, 0, 2)
	labels := []int{1, 4, 0}
	_, grad := SoftmaxCrossEntropy{}.Loss(logits, labels)

	const eps = 1e-3
	for i := 0; i < logits.Size(); i++ {
		d := logits.Data()
		orig := d[i]
		d[i] = orig + eps
		lp, _ := SoftmaxCrossEntropy{}.Loss(logits, labels)
		d[i] = orig - eps
		lm, _ := SoftmaxCrossEntropy{}.Loss(logits, labels)
		d[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(float64(grad.Data()[i])-numeric) > 1e-3 {
			t.Fatalf("coord %d: analytic %v vs numeric %v", i, grad.Data()[i], numeric)
		}
	}
}

func TestCrossEntropyPerfectPrediction(t *testing.T) {
	logits := tensor.FromSlice([]float32{100, 0, 0}, 1, 3)
	loss, _ := SoftmaxCrossEntropy{}.Loss(logits, []int{0})
	if loss > 1e-6 {
		t.Fatalf("confident correct prediction: loss = %v", loss)
	}
}

func TestCrossEntropyPanicsOnBadLabel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range label should panic")
		}
	}()
	SoftmaxCrossEntropy{}.Loss(tensor.New(1, 3), []int{3})
}

func TestMSEGradientNumeric(t *testing.T) {
	r := rng.New(2)
	logits := tensor.New(2, 3)
	logits.FillNormal(r, 0, 1)
	labels := []int{2, 0}
	_, grad := MSE{}.Loss(logits, labels)
	const eps = 1e-3
	for i := 0; i < logits.Size(); i++ {
		d := logits.Data()
		orig := d[i]
		d[i] = orig + eps
		lp, _ := MSE{}.Loss(logits, labels)
		d[i] = orig - eps
		lm, _ := MSE{}.Loss(logits, labels)
		d[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(float64(grad.Data()[i])-numeric) > 1e-3 {
			t.Fatalf("coord %d: analytic %v vs numeric %v", i, grad.Data()[i], numeric)
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		1, 0, // pred 0
		0, 1, // pred 1
		5, 3, // pred 0
	}, 3, 2)
	if got := Accuracy(logits, []int{0, 1, 1}); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Fatalf("accuracy = %v, want 2/3", got)
	}
}

func TestSGDStep(t *testing.T) {
	p := NewParam("w", tensor.FromSlice([]float32{1, 2}, 2))
	copy(p.G.Data(), []float32{0.5, -0.5})
	(&SGD{LR: 0.1}).Step([]*Param{p})
	if p.W.At(0) != 0.95 || p.W.At(1) != 2.05 {
		t.Fatalf("after step: %v", p.W.Data())
	}
}

func TestSGDWeightDecay(t *testing.T) {
	p := NewParam("w", tensor.FromSlice([]float32{1}, 1))
	// Zero gradient: only decay acts. w ← w − lr·wd·w = 1 − 0.1·0.5 = 0.95.
	(&SGD{LR: 0.1, WeightDecay: 0.5}).Step([]*Param{p})
	if d := p.W.At(0) - 0.95; d > 1e-6 || d < -1e-6 {
		t.Fatalf("decayed weight %v, want 0.95", p.W.At(0))
	}
}

func TestMomentumAccumulatesVelocity(t *testing.T) {
	p := NewParam("w", tensor.New(1))
	opt := &Momentum{LR: 1, Mu: 0.5}
	copy(p.G.Data(), []float32{1})
	opt.Step([]*Param{p}) // v = -1, w = -1
	opt.Step([]*Param{p}) // v = -1.5, w = -2.5
	if d := p.W.At(0) + 2.5; d > 1e-6 || d < -1e-6 {
		t.Fatalf("w = %v, want -2.5", p.W.At(0))
	}
}

// All three optimizers must drive a quadratic objective to its minimum.
func TestOptimizersConvergeOnQuadratic(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  Optimizer
	}{
		{"sgd", &SGD{LR: 0.1}},
		{"momentum", &Momentum{LR: 0.05, Mu: 0.9}},
		{"adam", &Adam{LR: 0.1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Minimize f(w) = ||w - target||² from w = 0.
			target := []float32{3, -2, 1}
			p := NewParam("w", tensor.New(3))
			for step := 0; step < 300; step++ {
				ZeroGrads([]*Param{p})
				for i, tv := range target {
					p.G.Data()[i] = 2 * (p.W.Data()[i] - tv)
				}
				tc.opt.Step([]*Param{p})
			}
			for i, tv := range target {
				if math.Abs(float64(p.W.Data()[i]-tv)) > 0.05 {
					t.Fatalf("%s: w[%d] = %v, want %v", tc.name, i, p.W.Data()[i], tv)
				}
			}
		})
	}
}

func TestClipGrads(t *testing.T) {
	p := NewParam("w", tensor.New(3))
	copy(p.G.Data(), []float32{-10, 0.5, 10})
	ClipGrads([]*Param{p}, 1)
	want := []float32{-1, 0.5, 1}
	for i, v := range p.G.Data() {
		if v != want[i] {
			t.Fatalf("clipped = %v, want %v", p.G.Data(), want)
		}
	}
}

func TestCopyParams(t *testing.T) {
	r := rng.New(3)
	a := NewDense("a", 3, 2, r)
	b := NewDense("b", 3, 2, r)
	if err := CopyParams(a.Params(), b.Params()); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(a.w.W, b.w.W, 0) {
		t.Fatal("weights differ after CopyParams")
	}
	c := NewDense("c", 4, 2, r)
	if err := CopyParams(a.Params(), c.Params()); err == nil {
		t.Fatal("shape mismatch must error")
	}
}

func TestAverageParams(t *testing.T) {
	mk := func(v float32) []*Param {
		return []*Param{NewParam("w", tensor.Full(v, 2))}
	}
	dst := mk(0)
	if err := AverageParams(dst, [][]*Param{mk(1), mk(3)}, []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if dst[0].W.At(0) != 2 {
		t.Fatalf("uniform average = %v, want 2", dst[0].W.At(0))
	}
	if err := AverageParams(dst, [][]*Param{mk(1), mk(3)}, []float64{3, 1}); err != nil {
		t.Fatal(err)
	}
	if dst[0].W.At(0) != 1.5 {
		t.Fatalf("weighted average = %v, want 1.5", dst[0].W.At(0))
	}
	if err := AverageParams(dst, nil, nil); err == nil {
		t.Fatal("no sources must error")
	}
	if err := AverageParams(dst, [][]*Param{mk(1)}, []float64{0}); err == nil {
		t.Fatal("zero total weight must error")
	}
}

func TestEncodeDecodeParamsRoundTrip(t *testing.T) {
	r := rng.New(5)
	src := NewSequential("m", NewDense("fc1", 4, 3, r), NewDense("fc2", 3, 2, r))
	dst := NewSequential("m", NewDense("fc1", 4, 3, r), NewDense("fc2", 3, 2, r))
	buf := EncodeParams(src.Params())
	if err := DecodeParamsInto(dst.Params(), buf); err != nil {
		t.Fatal(err)
	}
	for i, p := range src.Params() {
		if !tensor.AllClose(p.W, dst.Params()[i].W, 0) {
			t.Fatalf("param %d differs after round trip", i)
		}
	}
	// Gradients round-trip too.
	for _, p := range src.Params() {
		p.G.FillNormal(r, 0, 1)
	}
	if err := DecodeGradsInto(dst.Params(), EncodeGrads(src.Params())); err != nil {
		t.Fatal(err)
	}
	for i, p := range src.Params() {
		if !tensor.AllClose(p.G, dst.Params()[i].G, 0) {
			t.Fatalf("grad %d differs after round trip", i)
		}
	}
	// Corrupt payload errors.
	if err := DecodeParamsInto(dst.Params(), buf[:10]); err == nil {
		t.Fatal("truncated buffer must error")
	}
	// Trailing junk errors.
	if err := DecodeParamsInto(dst.Params(), append(buf, 0)); err == nil {
		t.Fatal("trailing bytes must error")
	}
}

func TestParamCount(t *testing.T) {
	r := rng.New(7)
	seq := NewSequential("m", NewDense("fc", 10, 5, r))
	if got := ParamCount(seq.Params()); got != 55 {
		t.Fatalf("ParamCount = %d, want 55", got)
	}
}

func TestZeroGrads(t *testing.T) {
	p := NewParam("w", tensor.New(2))
	copy(p.G.Data(), []float32{1, 2})
	ZeroGrads([]*Param{p})
	if p.G.At(0) != 0 || p.G.At(1) != 0 {
		t.Fatal("gradients not cleared")
	}
}

// An end-to-end sanity check: a small MLP must learn XOR.
func TestMLPLearnsXOR(t *testing.T) {
	r := rng.New(11)
	net := NewSequential("xor",
		NewDense("fc1", 2, 16, r),
		NewTanh("tanh"),
		NewDense("fc2", 16, 2, r),
	)
	x := tensor.FromSlice([]float32{0, 0, 0, 1, 1, 0, 1, 1}, 4, 2)
	labels := []int{0, 1, 1, 0}
	opt := &Adam{LR: 0.05}
	loss := SoftmaxCrossEntropy{}
	var last float64
	for i := 0; i < 500; i++ {
		ZeroGrads(net.Params())
		logits := net.Forward(x, true)
		l, grad := loss.Loss(logits, labels)
		net.Backward(grad)
		opt.Step(net.Params())
		last = l
	}
	if last > 0.05 {
		t.Fatalf("XOR loss after training: %v", last)
	}
	if acc := Accuracy(net.Forward(x, false), labels); acc != 1 {
		t.Fatalf("XOR accuracy %v, want 1", acc)
	}
}
