package nn

import (
	"fmt"
	"math"

	"medsplit/internal/tensor"
)

// ReLU is the rectified linear activation max(0, x).
//
// Like every layer in this package, the output and input-gradient
// tensors are layer-owned scratch, valid until the layer's next
// Forward/Backward (the Conv2D lifetime contract).
type ReLU struct {
	name string
	mask []bool
	out  *tensor.Tensor
	dx   *tensor.Tensor
}

var _ Layer = (*ReLU)(nil)

// NewReLU builds the activation.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name returns the layer name.
func (r *ReLU) Name() string { return r.name }

// Forward zeroes negative entries.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	r.out = r.out.EnsureShapeOf(x)
	out := r.out
	xd, od := x.Data(), out.Data()
	if train {
		// Reuse the layer-owned mask across rounds; every entry is
		// overwritten.
		if cap(r.mask) < len(xd) {
			r.mask = make([]bool, len(xd))
		}
		mask := r.mask[:len(xd)]
		// Scratch is dirty: write every element, not just positives.
		for i, v := range xd {
			on := v > 0
			mask[i] = on
			if on {
				od[i] = v
			} else {
				od[i] = 0
			}
		}
		r.mask = mask
		return out
	}
	for i, v := range xd {
		if v > 0 {
			od[i] = v
		} else {
			od[i] = 0
		}
	}
	return out
}

// Backward passes gradient only where the input was positive.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if r.mask == nil {
		panic(fmt.Sprintf("nn: %s: Backward before train-mode Forward", r.name))
	}
	if grad.Size() != len(r.mask) {
		panic(fmt.Sprintf("nn: %s: gradient size %d, want %d", r.name, grad.Size(), len(r.mask)))
	}
	r.dx = r.dx.EnsureShapeOf(grad)
	dx := r.dx
	gd, dd := grad.Data(), dx.Data()
	for i, on := range r.mask {
		if on {
			dd[i] = gd[i]
		} else {
			dd[i] = 0
		}
	}
	return dx
}

// Params returns nil.
func (r *ReLU) Params() []*Param { return nil }

// LeakyReLU is max(x, alpha*x) with a small positive slope for negative
// inputs.
type LeakyReLU struct {
	name  string
	alpha float32
	x     *tensor.Tensor
	out   *tensor.Tensor
	dx    *tensor.Tensor
}

var _ Layer = (*LeakyReLU)(nil)

// NewLeakyReLU builds the activation; alpha is typically 0.01–0.2.
func NewLeakyReLU(name string, alpha float32) *LeakyReLU {
	return &LeakyReLU{name: name, alpha: alpha}
}

// Name returns the layer name.
func (l *LeakyReLU) Name() string { return l.name }

// Forward applies the leaky rectifier.
func (l *LeakyReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.out = l.out.EnsureShapeOf(x)
	out := l.out
	xd, od := x.Data(), out.Data()
	for i, v := range xd {
		if v > 0 {
			od[i] = v
		} else {
			od[i] = l.alpha * v
		}
	}
	if train {
		l.x = x
	}
	return out
}

// Backward scales gradient by 1 or alpha depending on the input sign.
func (l *LeakyReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.x == nil {
		panic(fmt.Sprintf("nn: %s: Backward before train-mode Forward", l.name))
	}
	l.dx = l.dx.EnsureShapeOf(grad)
	dx := l.dx
	gd, dd, xd := grad.Data(), dx.Data(), l.x.Data()
	for i := range gd {
		if xd[i] > 0 {
			dd[i] = gd[i]
		} else {
			dd[i] = l.alpha * gd[i]
		}
	}
	return dx
}

// Params returns nil.
func (l *LeakyReLU) Params() []*Param { return nil }

// Sigmoid is the logistic activation 1/(1+e^-x).
type Sigmoid struct {
	name string
	out  *tensor.Tensor // shared train/eval scratch
	y    *tensor.Tensor // backward cache; nil after an eval Forward
}

var _ Layer = (*Sigmoid)(nil)

// NewSigmoid builds the activation.
func NewSigmoid(name string) *Sigmoid { return &Sigmoid{name: name} }

// Name returns the layer name.
func (s *Sigmoid) Name() string { return s.name }

// Forward applies the logistic function.
func (s *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	s.out = s.out.EnsureShapeOf(x)
	out := s.out
	xd, od := x.Data(), out.Data()
	for i, v := range xd {
		od[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	if train {
		s.y = out
	} else {
		// Eval overwrites the shared scratch; invalidate the backward
		// cache so a stale Backward panics instead of using eval values.
		s.y = nil
	}
	return out
}

// Backward uses dy/dx = y(1-y) from the cached output.
func (s *Sigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if s.y == nil {
		panic(fmt.Sprintf("nn: %s: Backward before train-mode Forward", s.name))
	}
	dx := tensor.New(grad.Shape()...)
	gd, dd, yd := grad.Data(), dx.Data(), s.y.Data()
	for i := range gd {
		dd[i] = gd[i] * yd[i] * (1 - yd[i])
	}
	return dx
}

// Params returns nil.
func (s *Sigmoid) Params() []*Param { return nil }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	name string
	out  *tensor.Tensor // shared train/eval scratch
	y    *tensor.Tensor // backward cache; nil after an eval Forward
	dx   *tensor.Tensor
}

var _ Layer = (*Tanh)(nil)

// NewTanh builds the activation.
func NewTanh(name string) *Tanh { return &Tanh{name: name} }

// Name returns the layer name.
func (t *Tanh) Name() string { return t.name }

// Forward applies tanh.
func (t *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	t.out = t.out.EnsureShapeOf(x)
	out := t.out
	xd, od := x.Data(), out.Data()
	for i, v := range xd {
		od[i] = float32(math.Tanh(float64(v)))
	}
	if train {
		t.y = out
	} else {
		// Eval overwrites the shared scratch; invalidate the backward
		// cache so a stale Backward panics instead of using eval values.
		t.y = nil
	}
	return out
}

// Backward uses dy/dx = 1 - y² from the cached output.
func (t *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if t.y == nil {
		panic(fmt.Sprintf("nn: %s: Backward before train-mode Forward", t.name))
	}
	t.dx = t.dx.EnsureShapeOf(grad)
	dx := t.dx
	gd, dd, yd := grad.Data(), dx.Data(), t.y.Data()
	for i := range gd {
		dd[i] = gd[i] * (1 - yd[i]*yd[i])
	}
	return dx
}

// Params returns nil.
func (t *Tanh) Params() []*Param { return nil }
