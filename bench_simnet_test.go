package medsplit

import (
	"testing"

	"medsplit/internal/experiment"
	"medsplit/internal/geonet"
	"medsplit/internal/simnet"
)

// BenchmarkSimnetRound measures full split-protocol rounds over the
// simulated geo-WAN at scale-out platform counts: the paper's
// 5-hospital topology, then synthetic 25- and 100-clinic deployments.
// ns/op is the real wall cost of simulating a session (the scheduler,
// codec and transport hot paths at fan-in scale); sim-ms/round is the
// virtual WAN time one synchronous round costs on that topology — the
// quantity the geonet estimators approximate and simnet measures by
// running the actual engine.
func BenchmarkSimnetRound(b *testing.B) {
	const rounds = 4
	for _, arm := range []struct {
		name      string
		platforms int
	}{
		{"platforms=5", 5},
		{"platforms=25", 25},
		{"platforms=100", 100},
	} {
		b.Run(arm.name, func(b *testing.B) {
			var topo *geonet.Topology
			var regions []geonet.Region
			if arm.platforms == 5 {
				topo = geonet.DefaultHospitalTopology()
				regions = simnet.Regions(topo)
			} else {
				topo, regions = geonet.SyntheticClinics(arm.platforms, 23)
			}
			cfg := experiment.Config{
				Arch:         experiment.ArchMLP,
				Classes:      4,
				TrainSamples: 2 * arm.platforms,
				TestSamples:  20,
				Platforms:    arm.platforms,
				Rounds:       rounds,
				TotalBatch:   2 * arm.platforms,
				EvalEvery:    rounds,
				Seed:         19,
				Topology:     topo,
				Regions:      regions,
				SimWAN:       true,
				SimJitter:    0.1,
			}
			var last *experiment.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunSplit(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.SimElapsed.Milliseconds())/rounds, "sim-ms/round")
			b.ReportMetric(float64(last.TrainingBytes), "wire-bytes")
		})
	}
}
